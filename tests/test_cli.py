"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table3_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.subset == "quick" and args.scenario == "both"


class TestCommands:
    def test_table1(self):
        code, text = run_cli("table1")
        assert code == 0
        assert "Case 1" in text and "Case 2" in text
        assert "%" in text

    def test_table2(self):
        code, text = run_cli("table2")
        assert code == 0
        assert "aoi222" in text and "48" in text

    def test_adder(self):
        code, text = run_cli("adder", "--width", "4")
        assert code == 0
        assert "c3" in text

    def test_bench_emits_json_artifact(self, tmp_path):
        import json

        out_path = tmp_path / "bench.json"
        # Two cases so --jobs 2 actually exercises the process pool
        # (run_suite falls back to serial for a single work item).
        code, text = run_cli(
            "bench", "--cases", "maj3", "fa1", "--scenario", "A",
            "--jobs", "2", "--out", str(out_path),
        )
        assert code == 0
        assert "bench - scenario A" in text
        assert "wrote JSON artifact" in text
        artifact = json.loads(out_path.read_text())
        assert artifact["suite"]["cases"] == ["maj3", "fa1"]
        assert [r["scenario"] for r in artifact["results"]] == ["A", "A"]
        assert [r["circuit"] for r in artifact["results"]] == ["maj3", "fa1"]

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.subset == "quick" and args.jobs == 1 and args.out is None

    def test_optimize_blif(self, tmp_path):
        blif = tmp_path / "fa.blif"
        blif.write_text(
            ".model fa\n.inputs a b cin\n.outputs s\n"
            ".names a b cin s\n100 1\n010 1\n001 1\n111 1\n.end\n"
        )
        code, text = run_cli("optimize", str(blif), "--scenario", "A")
        assert code == 0
        assert "best vs worst" in text
        assert "power reduction" in text

    def test_optimize_scenario_b(self, tmp_path):
        blif = tmp_path / "g.blif"
        blif.write_text(
            ".model g\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"
        )
        code, text = run_cli("optimize", str(blif), "--scenario", "B")
        assert code == 0
        assert "mapped gates" in text

    def test_optimize_sampled_stats_and_objective(self, tmp_path):
        blif = tmp_path / "fa.blif"
        blif.write_text(
            ".model fa\n.inputs a b cin\n.outputs s\n"
            ".names a b cin s\n100 1\n010 1\n001 1\n111 1\n.end\n"
        )
        code, text = run_cli(
            "optimize", str(blif), "--stats", "sampled", "--lanes", "64",
            "--objective", "delay-constrained", "--passes", "3",
        )
        assert code == 0
        assert "stats=sampled" in text and "lanes=64" in text
        assert "delay-constrained vs worst" in text

    def test_optimize_analytic_alias(self, tmp_path):
        blif = tmp_path / "g.blif"
        blif.write_text(
            ".model g\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"
        )
        code, text = run_cli("optimize", str(blif), "--stats", "analytic")
        assert code == 0
        assert "stats=model" in text

    def test_optimize_lanes_requires_sampled(self, tmp_path):
        blif = tmp_path / "g.blif"
        blif.write_text(
            ".model g\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"
        )
        with pytest.raises(SystemExit):
            run_cli("optimize", str(blif), "--lanes", "64")

    def test_optimize_saves_netlists(self, tmp_path):
        from repro.circuit.blif import parse_mapped_blif
        from repro.circuit.verilog import parse_verilog
        from repro.gates.library import default_library

        blif = tmp_path / "g.blif"
        blif.write_text(
            ".model g\n.inputs a b c\n.outputs y\n.names a b c y\n11- 1\n--1 1\n.end\n"
        )
        out_blif = tmp_path / "opt.blif"
        out_verilog = tmp_path / "opt.v"
        code, text = run_cli(
            "optimize", str(blif),
            "--save-blif", str(out_blif), "--save-verilog", str(out_verilog),
        )
        assert code == 0
        library = default_library()
        circuit_b = parse_mapped_blif(out_blif.read_text(), library)
        circuit_v = parse_verilog(out_verilog.read_text(), library)
        assert set(circuit_b.outputs) == {"y"}
        assert len(circuit_b) == len(circuit_v)


FA_BLIF = (
    ".model fa\n.inputs a b cin\n.outputs s cout\n"
    ".names a b cin s\n100 1\n010 1\n001 1\n111 1\n"
    ".names a b cin cout\n11- 1\n1-1 1\n-11 1\n.end\n"
)


class TestEco:
    def write_inputs(self, tmp_path, script):
        import json

        blif = tmp_path / "fa.blif"
        blif.write_text(FA_BLIF)
        script_path = tmp_path / "edits.json"
        script_path.write_text(json.dumps(script))
        return str(blif), str(script_path)

    def test_eco_reports_per_edit_deltas(self, tmp_path):
        import json

        blif, script = self.write_inputs(tmp_path, [
            {"op": "reorder", "gate": "g0", "config": 1},
            {"op": "input-stats", "net": "a", "probability": 0.3,
             "density": 2.0e5},
            {"op": "reorder", "gate": "g0", "config": -1},
        ])
        out_path = tmp_path / "eco.json"
        code, text = run_cli("eco", blif, script, "--out", str(out_path))
        assert code == 0
        assert "eco - fa" in text
        assert "input-stats a" in text
        assert "3 edits" in text
        artifact = json.loads(out_path.read_text())
        assert artifact["eco"]["backend"] == "analytic"
        assert len(artifact["results"]) == 3
        rows = artifact["results"]
        # consecutive rows chain: power_after of row k = power_before of k+1
        for before, after in zip(rows, rows[1:]):
            assert after["power_before"] == before["power_after"]
        # the incremental engine must touch fewer gates than from-scratch
        assert all(0 < r["cone"] <= artifact["eco"]["gates"] for r in rows)

    def test_eco_sampled_backend(self, tmp_path):
        blif, script = self.write_inputs(tmp_path, [
            {"op": "reorder", "gate": "g1", "config": 0},
        ])
        code, text = run_cli("eco", blif, script, "--backend", "sampled",
                             "--lanes", "64")
        assert code == 0
        assert "backend=sampled" in text

    def test_eco_sampled_dt_too_coarse_has_clean_error_and_remedy(self, tmp_path):
        # An input-stats edit far above the initial densities shrinks the
        # dwell times below the backend's frozen default dt.
        blif, script = self.write_inputs(tmp_path, [
            {"op": "input-stats", "net": "a", "probability": 0.5,
             "density": 1.0e9},
        ])
        with pytest.raises(SystemExit, match="--dt"):
            run_cli("eco", blif, script, "--backend", "sampled",
                    "--lanes", "16", "--steps", "8")
        code, text = run_cli("eco", blif, script, "--backend", "sampled",
                             "--lanes", "16", "--steps", "8", "--dt", "1e-10")
        assert code == 0
        assert "1 edits" in text

    def test_eco_timing_prices_delay_incrementally(self, tmp_path):
        import json

        script = [
            {"op": "reorder", "gate": "g0", "config": 1},
            {"op": "input-stats", "net": "a", "probability": 0.3,
             "density": 2.0e5},
            {"op": "reorder", "gate": "g0", "config": -1},
        ]
        blif, script_path = self.write_inputs(tmp_path, script)
        full_out = tmp_path / "full.json"
        timing_out = tmp_path / "timing.json"
        code, _ = run_cli("eco", blif, script_path, "--out", str(full_out))
        assert code == 0
        code, text = run_cli("eco", blif, script_path, "--timing",
                             "--out", str(timing_out))
        assert code == 0
        assert "timing=incremental" in text
        assert "re-timed" in text
        full = json.loads(full_out.read_text())
        incr = json.loads(timing_out.read_text())
        assert incr["eco"]["timing"] == "incremental"
        assert full["eco"]["timing"] == "full"
        # bit-identical delays, cone-sized work
        for a, b in zip(full["results"], incr["results"]):
            assert a["delay_after"] == b["delay_after"]
            assert a["delta_delay"] == b["delta_delay"]
            assert "retimed" not in a
            assert 0 <= b["retimed"] <= incr["eco"]["gates"]

    def test_eco_rejects_non_list_script(self, tmp_path):
        import json

        blif = tmp_path / "fa.blif"
        blif.write_text(FA_BLIF)
        script_path = tmp_path / "edits.json"
        script_path.write_text(json.dumps({"op": "reorder"}))
        with pytest.raises(SystemExit):
            run_cli("eco", str(blif), str(script_path))

    def test_eco_lanes_requires_sampled(self, tmp_path):
        blif, script = self.write_inputs(tmp_path, [])
        with pytest.raises(SystemExit):
            run_cli("eco", blif, script, "--lanes", "64")


class TestSearchCommand:
    def write_blif(self, tmp_path):
        blif = tmp_path / "fa.blif"
        blif.write_text(FA_BLIF)
        return str(blif)

    def test_search_reports_trace_and_artifact(self, tmp_path):
        import json

        blif = self.write_blif(tmp_path)
        out_path = tmp_path / "search.json"
        code, text = run_cli("search", blif, "--out", str(out_path))
        assert code == 0
        assert "search - fa" in text
        assert "greedy/power" in text
        assert "power reduction" not in text  # search prints its own summary
        assert "reduction" in text
        assert "re-propagated" in text
        artifact = json.loads(out_path.read_text())
        assert artifact["search"]["strategy"] == "greedy"
        assert artifact["search"]["scenario"] == "A"
        assert artifact["accepted_count"] == len(artifact["moves"])
        assert artifact["final"]["power"] <= artifact["baseline"]["power"]
        # every traced move is a replayable eco-script entry
        for move in artifact["moves"]:
            assert move["edit"]["op"] in ("reorder", "retemplate")

    def test_search_artifact_is_byte_stable(self, tmp_path):
        from repro.bench.runner import dumps_artifact, load_artifact, strip_timing

        blif = self.write_blif(tmp_path)
        one, two = tmp_path / "one.json", tmp_path / "two.json"
        run_cli("search", blif, "--strategy", "anneal", "--seed", "5",
                "--anneal-trials", "40", "--out", str(one))
        run_cli("search", blif, "--strategy", "anneal", "--seed", "5",
                "--anneal-trials", "40", "--out", str(two))
        assert dumps_artifact(strip_timing(load_artifact(str(one)))) == \
            dumps_artifact(strip_timing(load_artifact(str(two))))

    def test_search_power_delay_trace_is_stable_and_replays_via_sta(
            self, tmp_path):
        # The power-delay objective now prices every trial through the
        # incremental TimingCache; the artifact's per-move delay trace
        # must (a) be byte-stable across runs and (b) replay exactly:
        # applying the accepted-move script to a fresh circuit and
        # running a from-scratch STA after each edit reproduces every
        # delay_after bit-for-bit.
        import json

        from repro.circuit.blif import load_blif
        from repro.incremental.eco import resolve_edit
        from repro.synth.mapper import map_circuit
        from repro.timing.sta import analyze_timing

        from repro.bench.runner import dumps_artifact, load_artifact, strip_timing

        blif = self.write_blif(tmp_path)
        one, two = tmp_path / "one.json", tmp_path / "two.json"
        argv = ["search", blif, "--objective", "power-delay",
                "--delay-weight", "0.4", "--seed", "3"]
        code, text = run_cli(*argv, "--out", str(one))
        assert code == 0
        assert "re-timed" in text and "full STA per trial" in text
        run_cli(*argv, "--out", str(two))
        assert dumps_artifact(strip_timing(load_artifact(str(one)))) == \
            dumps_artifact(strip_timing(load_artifact(str(two))))

        artifact = json.loads(one.read_text())
        assert artifact["gates_retimed"] > 0
        circuit = map_circuit(load_blif(blif))
        for move in artifact["moves"]:
            circuit.apply_edit(resolve_edit(circuit, move["edit"]))
            assert analyze_timing(circuit).delay == move["delay_after"]
        assert analyze_timing(circuit).delay == artifact["final"]["delay"]

    def test_search_saves_blif(self, tmp_path):
        from repro.circuit.blif import parse_mapped_blif
        from repro.gates.library import default_library

        blif = self.write_blif(tmp_path)
        out_blif = tmp_path / "searched.blif"
        code, text = run_cli("search", blif, "--save-blif", str(out_blif))
        assert code == 0
        assert "wrote mapped BLIF" in text
        restored = parse_mapped_blif(out_blif.read_text(), default_library())
        assert len(restored) > 0

    def test_search_sampled_backend(self, tmp_path):
        blif = self.write_blif(tmp_path)
        code, text = run_cli("search", blif, "--backend", "sampled",
                             "--lanes", "32", "--steps", "8", "--max-moves", "3")
        assert code == 0
        assert "backend=sampled" in text

    def test_search_lanes_requires_sampled(self, tmp_path):
        blif = self.write_blif(tmp_path)
        with pytest.raises(SystemExit):
            run_cli("search", blif, "--lanes", "64")

    def test_search_delay_weight_validation(self, tmp_path):
        blif = self.write_blif(tmp_path)
        with pytest.raises(SystemExit, match="power-delay"):
            run_cli("search", blif, "--delay-weight", "0.7")
        with pytest.raises(SystemExit, match="between 0 and 1"):
            run_cli("search", blif, "--objective", "power-delay",
                    "--delay-weight", "1.5")

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "x.blif"])
        assert args.strategy == "greedy"
        assert args.objective == "power"
        assert not args.retemplate and not args.polish

    def test_search_portfolio_flags_require_anneal(self, tmp_path):
        blif = self.write_blif(tmp_path)
        with pytest.raises(SystemExit, match="--strategy anneal"):
            run_cli("search", blif, "--restarts", "2")
        with pytest.raises(SystemExit, match="--strategy anneal"):
            run_cli("search", blif, "--jobs", "2")

    def test_restarts_help_states_the_real_default(self):
        # the help text is built from DEFAULT_RESTARTS, not a literal,
        # so the two can never drift apart; introspect the action
        # (matching --help output is fragile under argparse wrapping).
        import argparse

        from repro.incremental.portfolio import DEFAULT_RESTARTS

        parser = build_parser()
        subactions = next(a for a in parser._actions
                          if isinstance(a, argparse._SubParsersAction))
        search = subactions.choices["search"]
        restarts = next(a for a in search._actions
                        if "--restarts" in a.option_strings)
        assert f"default {DEFAULT_RESTARTS} when --jobs" in restarts.help


class TestRobustCLI:
    """Checkpoint/resume and supervision flags on search and bench."""

    def write_blif(self, tmp_path):
        blif = tmp_path / "fa.blif"
        blif.write_text(FA_BLIF)
        return str(blif)

    def test_checkpoint_then_resume_is_byte_identical(self, tmp_path):
        from repro.bench.runner import dumps_artifact, load_artifact, \
            strip_timing

        blif = self.write_blif(tmp_path)
        plain, resumed = tmp_path / "plain.json", tmp_path / "resumed.json"
        ck = tmp_path / "run.ck.json"
        code, _ = run_cli("search", blif, "--strategy", "anneal",
                          "--seed", "5", "--anneal-trials", "40",
                          "--out", str(plain))
        assert code == 0
        code, _ = run_cli("search", blif, "--strategy", "anneal",
                          "--seed", "5", "--anneal-trials", "40",
                          "--checkpoint", str(ck), "--checkpoint-every", "1",
                          "--out", str(tmp_path / "ignored.json"))
        assert code == 0 and ck.exists()
        code, text = run_cli("search", blif, "--strategy", "anneal",
                             "--seed", "5", "--anneal-trials", "40",
                             "--resume", str(ck), "--out", str(resumed))
        assert code == 0
        assert dumps_artifact(strip_timing(load_artifact(str(resumed)))) == \
            dumps_artifact(strip_timing(load_artifact(str(plain))))

    def test_resume_rejects_mismatched_parameters(self, tmp_path):
        blif = self.write_blif(tmp_path)
        ck = tmp_path / "run.ck.json"
        run_cli("search", blif, "--strategy", "anneal", "--seed", "5",
                "--anneal-trials", "40", "--checkpoint", str(ck),
                "--checkpoint-every", "1",
                "--out", str(tmp_path / "a.json"))
        with pytest.raises(SystemExit, match="different search"):
            run_cli("search", blif, "--strategy", "anneal", "--seed", "6",
                    "--anneal-trials", "40", "--resume", str(ck),
                    "--out", str(tmp_path / "b.json"))

    def test_checkpoint_every_requires_checkpoint(self, tmp_path):
        blif = self.write_blif(tmp_path)
        with pytest.raises(SystemExit, match="--checkpoint"):
            run_cli("search", blif, "--checkpoint-every", "4")

    def test_deadline_requires_portfolio(self, tmp_path):
        blif = self.write_blif(tmp_path)
        with pytest.raises(SystemExit, match="--restarts/--jobs"):
            run_cli("search", blif, "--deadline", "10")

    def test_search_robust_defaults(self):
        args = build_parser().parse_args(["search", "x.blif"])
        assert args.checkpoint is None and args.resume is None
        assert args.checkpoint_every is None
        assert args.deadline is None and args.retries == 2

    def test_bench_robust_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.case_timeout is None and args.retries == 2


class TestTraceCLI:
    """--trace / REPRO_TRACE plumbing and the trace summarize subcommand."""

    def write_blif(self, tmp_path):
        blif = tmp_path / "fa.blif"
        blif.write_text(FA_BLIF)
        return str(blif)

    def test_trace_flag_writes_trace_without_perturbing_artifact(
            self, tmp_path):
        from repro.bench.runner import dumps_artifact, load_artifact, \
            strip_timing
        from repro.obs import trace
        from repro.obs.summarize import summarize_file

        blif = self.write_blif(tmp_path)
        plain_out = tmp_path / "plain.json"
        traced_out = tmp_path / "traced.json"
        trace_path = tmp_path / "run.jsonl"

        code, plain_text = run_cli("search", blif, "--out", str(plain_out))
        assert code == 0
        code, traced_text = run_cli("search", blif, "--out", str(traced_out),
                                    "--trace", str(trace_path))
        assert code == 0
        # tracing must not change a byte of the report or the artifact
        assert traced_text.replace(str(traced_out), str(plain_out)) == \
            plain_text
        assert dumps_artifact(strip_timing(load_artifact(str(traced_out)))) \
            == dumps_artifact(strip_timing(load_artifact(str(plain_out))))
        # the tracer is closed and cleared once main() returns
        assert trace.ACTIVE is None
        summary = summarize_file(str(trace_path))
        assert summary.records > 0
        assert summary.unclosed == []
        assert any(entry.name == "search" for entry in summary.spans)

    def test_env_var_enables_tracing(self, tmp_path, monkeypatch):
        from repro.obs import trace
        from repro.obs.summarize import summarize_file

        blif = self.write_blif(tmp_path)
        trace_path = tmp_path / "env.jsonl"
        monkeypatch.setenv(trace.ENV_VAR, str(trace_path))
        code, _ = run_cli("optimize", blif)
        assert code == 0
        assert trace.ACTIVE is None
        assert summarize_file(str(trace_path)).records > 0

    def test_trace_summarize_renders_table(self, tmp_path):
        blif = self.write_blif(tmp_path)
        trace_path = tmp_path / "run.jsonl"
        run_cli("search", blif, "--trace", str(trace_path))
        code, text = run_cli("trace", "summarize", str(trace_path),
                             "--top", "3")
        assert code == 0
        assert "trace summary" in text
        assert "slowest spans (top 3)" in text
        assert "search" in text
        assert "final metrics snapshot:" in text
        assert "stats.refresh_count" in text
        # byte-deterministic: summarizing the same file twice matches
        code, again = run_cli("trace", "summarize", str(trace_path),
                              "--top", "3")
        assert text == again

    def test_trace_summarize_missing_file_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="trace summarize"):
            run_cli("trace", "summarize", str(tmp_path / "nope.jsonl"))

    def test_trace_summarize_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_merge_without_shards_is_a_noop(self, tmp_path):
        blif = self.write_blif(tmp_path)
        trace_path = tmp_path / "run.jsonl"
        run_cli("search", blif, "--trace", str(trace_path))
        before = trace_path.read_bytes()
        code, text = run_cli("trace", "merge", str(trace_path))
        assert code == 0
        assert "no shards found" in text
        assert trace_path.read_bytes() == before

    def test_trace_merge_out_flag_writes_copy(self, tmp_path):
        import json

        blif = self.write_blif(tmp_path)
        trace_path = tmp_path / "run.jsonl"
        run_cli("search", blif, "--trace", str(trace_path))
        merged = tmp_path / "merged.jsonl"
        code, text = run_cli("trace", "merge", str(trace_path),
                             "-o", str(merged))
        assert code == 0 and "merged 0 shard(s)" in text
        lines = merged.read_text().splitlines()
        assert lines
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_trace_export_chrome_to_stdout_parses(self, tmp_path):
        import json

        blif = self.write_blif(tmp_path)
        trace_path = tmp_path / "run.jsonl"
        run_cli("search", blif, "--trace", str(trace_path))
        code, text = run_cli("trace", "export", str(trace_path),
                             "--format", "chrome")
        assert code == 0
        doc = json.loads(text)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"]
        assert all(e["ph"] in ("B", "E", "i", "C") for e in doc["traceEvents"])

        out_path = tmp_path / "run.chrome.json"
        code, text = run_cli("trace", "export", str(trace_path),
                             "-o", str(out_path))
        assert code == 0 and "wrote chrome trace" in text
        assert json.loads(out_path.read_text()) == doc

    def test_trace_export_missing_file_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="trace export"):
            run_cli("trace", "export", str(tmp_path / "nope.jsonl"))

    def test_progress_flag_streams_to_stderr(self, tmp_path, capsys):
        from repro.obs import progress

        blif = self.write_blif(tmp_path)
        code, text = run_cli("search", blif, "--progress")
        assert code == 0
        assert progress.ACTIVE is None  # cleared once main() returns
        err = capsys.readouterr().err
        assert "search.round" in err
        # progress must stay off the artifact/report channel
        assert "search.round" not in text

    def test_eco_artifact_unperturbed_by_tracing(self, tmp_path):
        import json

        from repro.bench.runner import dumps_artifact, load_artifact, \
            strip_timing

        blif = tmp_path / "fa.blif"
        blif.write_text(FA_BLIF)
        script_path = tmp_path / "edits.json"
        script_path.write_text(json.dumps([
            {"op": "reorder", "gate": "g0", "config": 1},
            {"op": "reorder", "gate": "g1", "config": 0},
        ]))
        plain_out = tmp_path / "plain.json"
        traced_out = tmp_path / "traced.json"
        code, _ = run_cli("eco", str(blif), str(script_path),
                          "--out", str(plain_out))
        assert code == 0
        code, _ = run_cli("eco", str(blif), str(script_path),
                          "--out", str(traced_out),
                          "--trace", str(tmp_path / "eco.jsonl"))
        assert code == 0
        assert dumps_artifact(strip_timing(load_artifact(str(traced_out)))) \
            == dumps_artifact(strip_timing(load_artifact(str(plain_out))))
