"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table3_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.subset == "quick" and args.scenario == "both"


class TestCommands:
    def test_table1(self):
        code, text = run_cli("table1")
        assert code == 0
        assert "Case 1" in text and "Case 2" in text
        assert "%" in text

    def test_table2(self):
        code, text = run_cli("table2")
        assert code == 0
        assert "aoi222" in text and "48" in text

    def test_adder(self):
        code, text = run_cli("adder", "--width", "4")
        assert code == 0
        assert "c3" in text

    def test_bench_emits_json_artifact(self, tmp_path):
        import json

        out_path = tmp_path / "bench.json"
        # Two cases so --jobs 2 actually exercises the process pool
        # (run_suite falls back to serial for a single work item).
        code, text = run_cli(
            "bench", "--cases", "maj3", "fa1", "--scenario", "A",
            "--jobs", "2", "--out", str(out_path),
        )
        assert code == 0
        assert "bench - scenario A" in text
        assert "wrote JSON artifact" in text
        artifact = json.loads(out_path.read_text())
        assert artifact["suite"]["cases"] == ["maj3", "fa1"]
        assert [r["scenario"] for r in artifact["results"]] == ["A", "A"]
        assert [r["circuit"] for r in artifact["results"]] == ["maj3", "fa1"]

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.subset == "quick" and args.jobs == 1 and args.out is None

    def test_optimize_blif(self, tmp_path):
        blif = tmp_path / "fa.blif"
        blif.write_text(
            ".model fa\n.inputs a b cin\n.outputs s\n"
            ".names a b cin s\n100 1\n010 1\n001 1\n111 1\n.end\n"
        )
        code, text = run_cli("optimize", str(blif), "--scenario", "A")
        assert code == 0
        assert "best vs worst" in text
        assert "power reduction" in text

    def test_optimize_scenario_b(self, tmp_path):
        blif = tmp_path / "g.blif"
        blif.write_text(
            ".model g\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"
        )
        code, text = run_cli("optimize", str(blif), "--scenario", "B")
        assert code == 0
        assert "mapped gates" in text

    def test_optimize_saves_netlists(self, tmp_path):
        from repro.circuit.blif import parse_mapped_blif
        from repro.circuit.verilog import parse_verilog
        from repro.gates.library import default_library

        blif = tmp_path / "g.blif"
        blif.write_text(
            ".model g\n.inputs a b c\n.outputs y\n.names a b c y\n11- 1\n--1 1\n.end\n"
        )
        out_blif = tmp_path / "opt.blif"
        out_verilog = tmp_path / "opt.v"
        code, text = run_cli(
            "optimize", str(blif),
            "--save-blif", str(out_blif), "--save-verilog", str(out_verilog),
        )
        assert code == 0
        library = default_library()
        circuit_b = parse_mapped_blif(out_blif.read_text(), library)
        circuit_v = parse_verilog(out_verilog.read_text(), library)
        assert set(circuit_b.outputs) == {"y"}
        assert len(circuit_b) == len(circuit_v)
