"""Cross-engine agreement: search / cone-aware multipass / re-analysis.

The delta-driven search and the cone-aware ``optimize_circuit(passes=N)``
both maintain their objective incrementally; neither is allowed to
drift from ground truth.  On several suite circuits, the final power
each engine reports must equal a full from-scratch re-analysis of the
netlist it emitted — bit-tight for the analytic engines, and at
sampling accuracy (same-substream resample exactly, shared-stream
resample within noise) for the sampled backend.
"""

import pytest

from repro.analysis.experiments import case_seed
from repro.bench.suite import get_case
from repro.core.optimizer import circuit_power, optimize_circuit
from repro.incremental import SampledBackend, search_circuit
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import propagate_stats
from repro.synth.mapper import map_circuit

CIRCUITS = ("c17", "xor5", "rca4")


def setting(name):
    circuit = map_circuit(get_case(name).network())
    stats = ScenarioA(seed=case_seed(name)).input_stats(circuit.inputs)
    return circuit, stats


@pytest.mark.parametrize("name", CIRCUITS)
class TestAnalyticAgreement:
    def test_search_power_matches_full_reanalysis(self, name):
        circuit, stats = setting(name)
        result = search_circuit(circuit, stats)
        reanalysis = circuit_power(result.circuit, stats)
        assert result.power_after == pytest.approx(reanalysis.total, rel=1e-12)

    def test_multipass_power_matches_full_reanalysis(self, name):
        circuit, stats = setting(name)
        result = optimize_circuit(circuit, stats, passes=8)
        reanalysis = circuit_power(result.circuit, stats)
        assert result.power_after == pytest.approx(reanalysis.total, rel=1e-12)

    def test_search_matches_or_beats_single_pass(self, name):
        circuit, stats = setting(name)
        searched = search_circuit(circuit, stats)
        single = optimize_circuit(circuit, stats, passes=1)
        assert searched.power_after <= (
            circuit_power(single.circuit, stats).total * (1.0 + 1e-9)
        )

    def test_search_and_multipass_agree(self, name):
        # Same per-gate exhaustive enumeration, same settled-load fixed
        # point — the two engines must report the same final power.
        circuit, stats = setting(name)
        searched = search_circuit(circuit, stats)
        multi = optimize_circuit(circuit, stats, passes=8)
        assert searched.power_after == pytest.approx(
            multi.power_after, rel=1e-12
        )


@pytest.mark.parametrize("name", CIRCUITS)
class TestSampledAgreement:
    LANES, STEPS = 128, 24

    def test_search_power_matches_sampled_reanalysis(self, name):
        circuit, stats = setting(name)
        dwells = [
            d for s in stats.values()
            for d in (s.mean_high_dwell, s.mean_low_dwell)
        ]
        dt = 0.2 * min(dwells)
        seed = case_seed(name, 1)
        result = search_circuit(circuit, stats, backend="sampled",
                                lanes=self.LANES, steps=self.STEPS, dt=dt,
                                seed=seed)
        # exact: a from-scratch resample on the engine's own substreams
        fresh = SampledBackend(lanes=self.LANES, steps=self.STEPS, dt=dt,
                               seed=seed).full(result.circuit, stats)
        assert result.net_stats == fresh
        assert result.power_after == pytest.approx(
            circuit_power(result.circuit, stats, net_stats=fresh).total,
            rel=1e-12,
        )
        # within sigma: an independent shared-stream estimator run
        shared = propagate_stats(result.circuit, stats, method="sampled",
                                 lanes=self.LANES, steps=self.STEPS, dt=dt,
                                 seed=seed)
        reanalysis = circuit_power(result.circuit, stats, net_stats=shared)
        assert result.power_after == pytest.approx(reanalysis.total, rel=0.15)
