"""Cross-process trace shards, the deterministic merge, chrome export.

The tentpole contracts of the multi-process observability pipeline:

* a forked worker writing through an inherited path-backed tracer lands
  in its own ``<trace>.pid<N>.jsonl`` shard, never in the parent's
  stream (and never duplicates the parent's buffered records);
* the merge interleaves shards by ``(ts_ns, pid, emission order)`` —
  identical merged bytes for any worker completion order;
* a traced portfolio search with ``jobs>1`` yields a merged trace with
  worker-side ``portfolio.anneal`` spans from *every* restart, while
  the search artifact stays byte-identical to the untraced run and
  across jobs values;
* chrome export emits valid Chrome trace-event JSON.
"""

import io
import json
import multiprocessing
import os

import pytest

from repro.bench.generators import ripple_carry_adder
from repro.bench.runner import dumps_artifact, strip_timing
from repro.incremental import search_circuit
from repro.obs import trace
from repro.obs.export import chrome_trace, export_chrome_file
from repro.obs.shards import find_shards, merge_file, merge_records
from repro.obs.summarize import RecordReader, summarize_file
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs the fork start method",
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    trace.disable()
    yield
    trace.disable()


@pytest.fixture(scope="module")
def setting():
    circuit = map_circuit(ripple_carry_adder(3))
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)
    return circuit, input_stats


def _write_jsonl(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")


def _child_emit(ready):
    # Runs in a forked child: the inherited tracer must reroute to a
    # shard on first use, and flush before the hard exit.
    with trace.span("child.work", tag="fork"):
        trace.instant("child.tick")
    trace.flush()
    ready.put(os.getpid())


class TestShardFiles:
    @fork_only
    def test_forked_child_writes_shard_not_parent_stream(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        trace.enable(path)
        with trace.span("parent.before"):
            pass
        ctx = multiprocessing.get_context("fork")
        ready = ctx.Queue()
        proc = ctx.Process(target=_child_emit, args=(ready,))
        proc.start()
        child_pid = ready.get(timeout=30)
        proc.join(timeout=30)
        with trace.span("parent.after"):
            pass
        trace.disable()

        shards = find_shards(path)
        assert shards == [trace.shard_path(path, child_pid)]
        parent_records = list(RecordReader(path))
        assert {r["pid"] for r in parent_records} == {os.getpid()}
        assert [r["name"] for r in parent_records if r["ev"] == "B"] == \
            ["parent.before", "parent.after"]
        shard_records = list(RecordReader(shards[0]))
        assert {r["pid"] for r in shard_records} == {child_pid}
        assert [r["name"] for r in shard_records] == \
            ["child.work", "child.tick", "child.work"]

        merged = merge_file(path)
        assert merged == 1
        assert find_shards(path) == []  # consumed
        names = [r["name"] for r in RecordReader(path)]
        assert "child.work" in names and "parent.before" in names

    def test_io_sink_child_stays_silent(self):
        sink = io.StringIO()
        tracer = trace.enable(sink)
        tracer._pid += 1  # simulate a forked child: IO sinks can't shard
        assert tracer.span("x") is trace.NULL_SPAN
        tracer.instant("x")
        trace.disable()
        assert sink.getvalue() == ""

    def test_enable_cleans_stale_shards(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        stale = trace.shard_path(path, 12345)
        _write_jsonl(stale, [{"ev": "I", "name": "old", "ts_ns": 0,
                              "depth": 0, "pid": 12345}])
        trace.enable(path)
        trace.disable()
        assert not os.path.exists(stale)

    def test_adopt_joins_parent_trace(self, tmp_path):
        # A spawn-style worker: no inherited tracer, joins explicitly.
        path = str(tmp_path / "t.jsonl")
        _write_jsonl(path, [])
        assert trace.ACTIVE is None
        tracer = trace.adopt(path, t0_ns=0)
        assert tracer is trace.ACTIVE
        with trace.span("adopted.work"):
            pass
        trace.disable()
        shard = trace.shard_path(path, os.getpid())
        assert find_shards(path) == [shard]
        records = list(RecordReader(shard))
        assert [r["name"] for r in records] == ["adopted.work"] * 2
        # adopt with a live tracer is a no-op returning the active one
        live = trace.enable(io.StringIO())
        assert trace.adopt(path, t0_ns=0) is live


class TestMerge:
    def _shard_set(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        main = [
            {"ev": "B", "name": "parent", "ts_ns": 0, "depth": 0, "pid": 10},
            {"ev": "E", "name": "parent", "ts_ns": 900, "depth": 0,
             "dur_ns": 900, "pid": 10},
        ]
        worker_a = [
            {"ev": "B", "name": "wa", "ts_ns": 100, "depth": 0, "pid": 20},
            {"ev": "E", "name": "wa", "ts_ns": 300, "depth": 0,
             "dur_ns": 200, "pid": 20},
        ]
        worker_b = [
            # Same ts as worker_a's begin: the pid tie-break decides.
            {"ev": "B", "name": "wb", "ts_ns": 100, "depth": 0, "pid": 30},
            {"ev": "E", "name": "wb", "ts_ns": 200, "depth": 0,
             "dur_ns": 100, "pid": 30},
        ]
        _write_jsonl(path, main)
        _write_jsonl(trace.shard_path(path, 20), worker_a)
        _write_jsonl(trace.shard_path(path, 30), worker_b)
        return path, main, worker_a, worker_b

    def test_merge_interleaves_by_ts_with_pid_tiebreak(self, tmp_path):
        path, _, _, _ = self._shard_set(tmp_path)
        assert merge_file(path) == 2
        records = list(RecordReader(path))
        assert [(r["name"], r["ev"]) for r in records] == [
            ("parent", "B"), ("wa", "B"), ("wb", "B"), ("wb", "E"),
            ("wa", "E"), ("parent", "E"),
        ]
        assert find_shards(path) == []

    def test_merge_bytes_independent_of_stream_order(self, tmp_path):
        _, main, worker_a, worker_b = self._shard_set(tmp_path)
        orders = [
            [main, worker_a, worker_b],
            [worker_b, main, worker_a],
            [worker_a, worker_b, main],
        ]
        outputs = {
            json.dumps(merge_records(order), sort_keys=True)
            for order in orders
        }
        assert len(outputs) == 1

    def test_merge_to_out_keeps_shards(self, tmp_path):
        path, _, _, _ = self._shard_set(tmp_path)
        out = str(tmp_path / "merged.jsonl")
        assert merge_file(path, out=out) == 2
        assert len(find_shards(path)) == 2  # inputs untouched
        assert len(list(RecordReader(out))) == 6
        # main file untouched too
        assert len(list(RecordReader(path))) == 2

    def test_merge_without_shards_is_noop(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_jsonl(path, [{"ev": "I", "name": "only", "ts_ns": 1,
                             "depth": 0, "pid": 1}])
        before = open(path).read()
        assert merge_file(path) == 0
        assert open(path).read() == before

    def test_keep_shards(self, tmp_path):
        path, _, _, _ = self._shard_set(tmp_path)
        assert merge_file(path, keep_shards=True) == 2
        assert len(find_shards(path)) == 2


class TestPortfolioTrace:
    @fork_only
    def test_traced_portfolio_has_every_restart_span_and_identical_artifact(
            self, setting, tmp_path):
        circuit, input_stats = setting
        kwargs = dict(strategy="anneal", seed=5, restarts=2,
                      anneal_trials=10)
        untraced = search_circuit(circuit, input_stats, jobs=1, **kwargs)
        path = str(tmp_path / "t.jsonl")
        trace.enable(path)
        traced = search_circuit(circuit, input_stats, jobs=2, **kwargs)
        trace.disable()
        assert dumps_artifact(strip_timing(traced.to_artifact())) == \
            dumps_artifact(strip_timing(untraced.to_artifact()))

        assert merge_file(path) >= 1
        seen = {}
        pids = set()
        for record in RecordReader(path):
            pids.add(record.get("pid"))
            if record.get("ev") == "B" and \
                    record.get("name") == "portfolio.anneal":
                seen[record["attrs"]["index"]] = record.get("pid")
        assert set(seen) == {0, 1}  # a span from every restart
        assert all(pid != os.getpid() for pid in seen.values())
        assert os.getpid() in pids  # parent instants are there too
        summary = summarize_file(path)
        names = {entry.name for entry in summary.spans}
        assert "portfolio.anneal" in names and "search.trial" in names
        assert summary.unclosed == []


class TestChromeExport:
    def test_export_is_valid_chrome_json(self, setting, tmp_path):
        circuit, input_stats = setting
        path = str(tmp_path / "t.jsonl")
        trace.enable(path)
        search_circuit(circuit, input_stats, strategy="greedy")
        trace.disable()
        out = str(tmp_path / "t.chrome.json")
        text = export_chrome_file(path, out=out)
        doc = json.loads(text)
        assert json.loads(open(out).read()) == doc
        events = doc["traceEvents"]
        assert events
        assert all("ph" in e and "ts" in e and "pid" in e for e in events)
        assert {e["ph"] for e in events} <= {"B", "E", "i", "C"}
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        assert begins == ends > 0
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and all(
            isinstance(v, (int, float)) for c in counters
            for v in c["args"].values()
        )
        # export twice -> identical bytes
        assert export_chrome_file(path) == text

    def test_event_mapping(self):
        records = [
            {"ev": "B", "name": "s", "ts_ns": 1500, "depth": 0, "pid": 7,
             "attrs": {"k": 1}},
            {"ev": "I", "name": "t", "ts_ns": 2000, "depth": 1, "pid": 7},
            {"ev": "E", "name": "s", "ts_ns": 3000, "depth": 0,
             "dur_ns": 1500, "pid": 7, "error": True},
            {"ev": "M", "ts_ns": 4000, "pid": 7,
             "metrics": {"n": 3, "skip": "text", "flag": True}},
        ]
        events = chrome_trace(records)["traceEvents"]
        assert [e["ph"] for e in events] == ["B", "i", "E", "C"]
        begin, instant, end, counter = events
        assert begin["ts"] == 1.5 and begin["pid"] == begin["tid"] == 7
        assert begin["args"] == {"k": 1}
        assert instant["s"] == "t"
        assert end["args"] == {"error": True}
        assert counter["args"] == {"n": 3}  # text and bools dropped

    def test_empty_trace_exports_empty_event_list(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        doc = json.loads(export_chrome_file(str(path)))
        assert doc["traceEvents"] == []


class TestEmptyAndDamagedTraces:
    def test_empty_trace_file_summarizes(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        summary = summarize_file(str(path))
        assert summary.records == 0
        assert summary.spans == []
        assert summary.truncated_records == 0
        from repro.obs.summarize import render_summary

        assert "0 records" in render_summary(summary)

    def test_truncated_multibyte_tail_does_not_raise(self, tmp_path):
        # A worker killed mid-write can split a UTF-8 sequence; the
        # reader must not raise UnicodeDecodeError.
        path = tmp_path / "t.jsonl"
        good = json.dumps({"ev": "I", "name": "ok", "ts_ns": 1,
                           "depth": 0, "pid": 1}) + "\n"
        cut = '{"ev":"I","name":"caf\xe9"'.encode("utf-8")[:-2]
        path.write_bytes(good.encode("utf-8") + cut)
        summary = summarize_file(str(path))
        assert summary.records == 1
        assert summary.instants == 1
        assert summary.truncated_records == 1
