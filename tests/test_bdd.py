"""Tests for the ROBDD package, cross-checked against truth tables."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.bdd import BDD
from repro.boolean.expr import parse_expr
from repro.boolean.truthtable import TruthTable

VARS = ("a", "b", "c", "d")


def build_both(text):
    """Build the same function as a BDD Func and a TruthTable."""
    expr = parse_expr(text)
    bdd = BDD(VARS)
    env = {v: bdd.var(v) for v in VARS}
    func = expr.evaluate(env)
    tt = expr.to_truthtable(VARS)
    return bdd, func, tt


def assert_equivalent(func, tt):
    for i in range(1 << len(VARS)):
        assignment = {v: bool((i >> j) & 1) for j, v in enumerate(VARS)}
        assert func.evaluate(assignment) == tt.evaluate(assignment)


class TestBasics:
    def test_terminals(self):
        bdd = BDD(VARS)
        assert bdd.true.is_true() and bdd.false.is_false()
        assert (~bdd.true).is_false()

    def test_var(self):
        bdd = BDD(VARS)
        f = bdd.var("b")
        assert f.evaluate({"a": False, "b": True, "c": False, "d": False})
        assert not f.evaluate({"a": True, "b": False, "c": False, "d": False})

    def test_unknown_var_raises(self):
        bdd = BDD(VARS)
        with pytest.raises(KeyError):
            bdd.var("z")

    def test_canonicity_hash_consing(self):
        bdd = BDD(VARS)
        f = (bdd.var("a") & bdd.var("b")) | (bdd.var("a") & bdd.var("c"))
        g = bdd.var("a") & (bdd.var("b") | bdd.var("c"))
        assert f.node == g.node  # identical functions share the node

    def test_mixed_managers_rejected(self):
        b1, b2 = BDD(VARS), BDD(VARS)
        with pytest.raises(ValueError):
            _ = b1.var("a") & b2.var("a")

    def test_bool_coercion(self):
        bdd = BDD(VARS)
        assert (bdd.var("a") & False).is_false()
        assert (bdd.var("a") | True).is_true()

    @pytest.mark.parametrize(
        "text",
        ["a & b", "a | b & c", "a ^ b ^ c", "(a | b) & (c | d)", "!(a & b) | (c ^ d)"],
    )
    def test_equivalence_with_truthtable(self, text):
        _, func, tt = build_both(text)
        assert_equivalent(func, tt)


class TestOperations:
    def test_ite(self):
        bdd = BDD(VARS)
        f = bdd.ite(bdd.var("a"), bdd.var("b"), bdd.var("c"))
        tt = parse_expr("(a & b) | (!a & c)").to_truthtable(VARS)
        assert_equivalent(f, tt)

    def test_restrict(self):
        _, func, tt = build_both("(a | b) & c")
        cof = func.cofactor("a", True)
        assert_equivalent(cof, tt.cofactor("a", True))

    def test_boolean_difference(self):
        _, func, tt = build_both("(a & b) | c")
        diff = func.boolean_difference("a")
        assert_equivalent(diff, tt.boolean_difference("a"))

    def test_exists(self):
        bdd, func, tt = build_both("a & b & !c")
        quantified = bdd.exists(func, ["a"])
        expected = tt.cofactor("a", True) | tt.cofactor("a", False)
        assert_equivalent(quantified, expected)

    def test_support(self):
        _, func, _ = build_both("a & c")
        assert func.support() == ("a", "c")

    def test_sat_count(self):
        _, func, tt = build_both("(a | b) & (c | d)")
        assert func.sat_count(4) == tt.count_minterms()

    def test_xor_of_self_is_false(self):
        bdd = BDD(VARS)
        f = bdd.var("a") & bdd.var("b")
        assert (f ^ f).is_false()


class TestProbability:
    def test_variable(self):
        bdd = BDD(VARS)
        p = bdd.var("a").probability({"a": 0.25, "b": 0.5, "c": 0.5, "d": 0.5})
        assert p == pytest.approx(0.25)

    @pytest.mark.parametrize("text", ["a & b", "a | b", "a ^ b", "(a | b) & (c | d)"])
    def test_matches_truthtable(self, text):
        _, func, tt = build_both(text)
        probs = {"a": 0.3, "b": 0.6, "c": 0.9, "d": 0.2}
        assert func.probability(probs) == pytest.approx(tt.probability(probs))

    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.lists(st.floats(min_value=0.01, max_value=0.99), min_size=4, max_size=4),
    )
    @settings(max_examples=40)
    def test_random_functions_match_truthtable(self, bits, ps):
        tt = TruthTable(VARS, bits)
        bdd = BDD(VARS)
        # Build the BDD minterm by minterm.
        func = bdd.false
        for i in tt.minterms():
            term = bdd.true
            for j, v in enumerate(VARS):
                var = bdd.var(v)
                term = term & (var if (i >> j) & 1 else ~var)
            func = func | term
        probs = dict(zip(VARS, ps))
        assert func.probability(probs) == pytest.approx(tt.probability(probs))
        for v in VARS:
            assert func.boolean_difference(v).probability(probs) == pytest.approx(
                tt.boolean_difference(v).probability(probs)
            )
