"""Tests for the useless-transition (glitch) analysis."""

import pytest

from repro.analysis.glitches import analyze_glitches
from repro.bench.generators import ripple_carry_adder
from repro.circuit.netlist import Circuit
from repro.gates.library import default_library
from repro.sim.stimulus import ScenarioB, Stimulus
from repro.stochastic.signal import SignalStats
from repro.synth.mapper import map_circuit

LIB = default_library()


def hazard_circuit():
    """y = nand(a, inv(a)): statically constant 1, glitches on every edge."""
    c = Circuit("hazard", LIB)
    c.add_input("a")
    c.add_output("y")
    c.add_gate("g0", "inv", {"a": "a"}, "abar")
    c.add_gate("g1", "nand2", {"a": "a", "b": "abar"}, "y")
    return c


def square_stimulus(toggles=50, period=2e-8):
    duration = (toggles + 1) * period / 2
    times = tuple((k + 1) * period / 2 for k in range(toggles))
    return Stimulus({"a": SignalStats(0.5, 2.0 / period)},
                    {"a": (0, times)}, duration)


class TestGlitchReport:
    def test_hazard_circuit_all_output_activity_useless(self):
        report = analyze_glitches(hazard_circuit(), square_stimulus())
        useless = report.useless_transitions
        assert useless["y"] > 0
        assert report.settled.net_transitions["y"] == 0
        assert report.useless_transition_fraction > 0.0
        assert report.useless_energy_fraction > 0.0

    def test_fractions_bounded(self):
        report = analyze_glitches(hazard_circuit(), square_stimulus())
        assert 0.0 <= report.useless_transition_fraction <= 1.0
        assert 0.0 <= report.useless_energy_fraction <= 1.0

    def test_hottest_nets_ranked(self):
        report = analyze_glitches(hazard_circuit(), square_stimulus())
        hottest = report.hottest_nets(2)
        assert hottest[0][0] == "y"
        counts = [c for _, c in hottest]
        assert counts == sorted(counts, reverse=True)

    def test_glitch_free_circuit(self):
        """A single gate cannot glitch: timed == settled."""
        c = Circuit("one", LIB)
        c.add_input("a")
        c.add_output("y")
        c.add_gate("g0", "inv", {"a": "a"}, "y")
        report = analyze_glitches(c, square_stimulus(toggles=20))
        assert report.total_useless == 0
        assert report.useless_energy_fraction == pytest.approx(0.0, abs=1e-9)


class TestAdderGlitches:
    def test_ripple_adder_has_useless_transitions_in_scenario_b(self):
        """The paper's motivating claim: latched operands still glitch
        the carry chain because of unequal path delays."""
        circuit = map_circuit(ripple_carry_adder(6))
        scenario = ScenarioB(seed=2)
        stimulus = scenario.generate(circuit.inputs, cycles=150)
        report = analyze_glitches(circuit, stimulus)
        assert report.total_useless > 0
        assert report.useless_transition_fraction > 0.02
        # Glitch energy is a real fraction, not an artefact of counting.
        assert report.timed.energy > report.settled.energy
