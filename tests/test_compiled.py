"""Bit-identity of the compiled flat-circuit kernels (`repro.compiled`).

The contract under test: every kernel — from-scratch analytic (P, D)
propagation, net loads, arrival times, and the dirty-cone incremental
forms behind `StatsCache`/`TimingCache` — produces **bit-identical**
results (exact float equality) to the object-graph path, over random
circuits and random reorder/retemplate/input-stats/input-arrival edit
sequences.  Plus the memoised-structure satellite (FanoutIndex /
topological order shared across caches with invalidation hooks) and
the numpy summation-order canary the kernels rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_logic
from repro.bench.suite import get_case
from repro.compiled import CompiledCircuit, get_compiled, use_compiled
from repro.compiled.backend import CompiledAnalyticBackend
from repro.compiled.circuit import _rowwise_selected_sum
from repro.gates.library import default_library
from repro.incremental import StatsCache, TimingCache, make_backend, search_circuit
from repro.incremental.backends import AnalyticBackend
from repro.bench.runner import dumps_artifact, strip_timing
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import local_stats, propagate_stats
from repro.stochastic.signal import SignalStats
from repro.synth.mapper import map_circuit
from repro.timing.sta import analyze_timing

_SWAP_GROUPS = {}
for _template in default_library():
    _SWAP_GROUPS.setdefault(_template.pins, []).append(_template.name)
_SWAP_GROUPS = {
    pins: names for pins, names in _SWAP_GROUPS.items() if len(names) > 1
}


@pytest.fixture(scope="module")
def master():
    circuit = map_circuit(get_case("rca4").network())
    stats = ScenarioA(seed=5).input_stats(circuit.inputs)
    return circuit, stats


@pytest.fixture(scope="module")
def wide():
    """A wider random circuit: many gates per level, all templates."""
    circuit = map_circuit(random_logic(12, 60, seed=9))
    stats = ScenarioA(seed=2).input_stats(circuit.inputs)
    return circuit, stats


def assert_timing_equal(circuit, input_arrivals=None):
    reference = analyze_timing(circuit, input_arrivals=input_arrivals,
                               compiled=False)
    compiled = analyze_timing(circuit, input_arrivals=input_arrivals,
                              compiled=True)
    assert compiled.arrivals == reference.arrivals
    assert compiled.delay == reference.delay
    assert compiled.critical_path == reference.critical_path


# ----------------------------------------------------------------------
# The numpy contract the kernels stand on
# ----------------------------------------------------------------------
class TestSummationOrder:
    def test_rowwise_selected_sum_matches_1d_sums(self):
        """Batched masked sums must replay numpy's 1-D pairwise order.

        Library truth tables select at most 2**6 minterms; if a numpy
        upgrade ever changes its 1-D reduction order, this canary (and
        the equivalence suites below) fails before any silent drift.
        """
        rng = np.random.default_rng(0)
        for width in range(1, 65):
            block = rng.random((5, width + 3))
            selection = np.sort(
                rng.choice(width + 3, size=width, replace=False))
            batched = _rowwise_selected_sum(block, selection)
            for row in range(len(block)):
                assert batched[row] == block[row, selection].sum(), \
                    f"order drift at width {width}"

    def test_empty_selection_sums_to_zero(self):
        block = np.ones((4, 8))
        assert np.array_equal(
            _rowwise_selected_sum(block, np.array([], dtype=np.int64)),
            np.zeros(4),
        )


# ----------------------------------------------------------------------
# From-scratch equivalence
# ----------------------------------------------------------------------
class TestFromScratch:
    def test_stats_bit_identical(self, master, wide):
        for circuit, stats in (master, wide):
            assert propagate_stats(circuit, stats, "local", compiled=True) \
                == local_stats(circuit, stats)

    def test_timing_bit_identical(self, master, wide):
        for circuit, _ in (master, wide):
            assert_timing_equal(circuit)

    def test_timing_with_input_arrivals(self, master):
        circuit, _ = master
        arrivals = {net: 1e-10 * i for i, net in enumerate(circuit.inputs)}
        assert_timing_equal(circuit, input_arrivals=arrivals)

    def test_net_loads_bit_identical(self, master):
        circuit, _ = master
        from repro.gates.capacitance import TechParams

        tech = TechParams()
        compiled = get_compiled(circuit)
        loads = compiled.net_loads(tech, 10.0e-15)
        for net in circuit.nets():
            assert loads[compiled.net_id[net]] == circuit.output_load(
                net, tech, 10.0e-15)

    def test_direct_config_mutation_is_picked_up(self, master):
        """Batch kernels resync codes for edits outside the edit API."""
        circuit, stats = master
        work = circuit.copy()
        get_compiled(work)  # lower before mutating behind its back
        gate = next(g for g in work.gates
                    if g.template.num_configurations() > 1)
        gate.config = gate.template.configurations()[-1]
        assert_timing_equal(work)
        assert propagate_stats(work, stats, "local", compiled=True) \
            == local_stats(work, stats)


# ----------------------------------------------------------------------
# Edit-sequence equivalence (the incremental kernels)
# ----------------------------------------------------------------------
def edit_specs():
    return st.tuples(
        st.sampled_from(
            ["reorder", "retemplate", "input-stats", "input-arrival"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )


def apply_spec(circuit, cache, tcache, input_stats, spec):
    kind, selector, value = spec
    if kind == "reorder":
        gates = [g for g in circuit.gates
                 if g.template.num_configurations() > 1]
        gate = gates[selector % len(gates)]
        configurations = gate.template.configurations()
        circuit.set_config(gate.name,
                           configurations[value % len(configurations)])
    elif kind == "retemplate":
        gates = [g for g in circuit.gates if g.template.pins in _SWAP_GROUPS]
        gate = gates[selector % len(gates)]
        group = _SWAP_GROUPS[gate.template.pins]
        others = [name for name in group if name != gate.template.name]
        circuit.set_template(gate.name, others[value % len(others)])
    elif kind == "input-stats":
        net = circuit.inputs[selector % len(circuit.inputs)]
        probability = 0.05 + 0.9 * ((value % 97) / 96.0)
        density = 1.0e4 * (1 + value % 89)
        input_stats[net] = SignalStats(probability, density)
        cache.set_input_stats(net, input_stats[net])
    else:
        net = circuit.inputs[selector % len(circuit.inputs)]
        tcache.set_input_arrival(net, 1.0e-12 * (value % 503))


class TestEditEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(edit_specs(), min_size=1, max_size=8))
    def test_compiled_caches_match_scratch_after_every_edit(self, master,
                                                           specs):
        circuit_master, stats = master
        circuit = circuit_master.copy()
        current = dict(stats)
        cache = StatsCache(circuit, current, compiled=True)
        tcache = TimingCache(circuit, index=cache.index, compiled=True)
        try:
            assert isinstance(cache.backend, CompiledAnalyticBackend)
            for spec in specs:
                apply_spec(circuit, cache, tcache, current, spec)
                assert cache.stats() == propagate_stats(
                    circuit, current, "local")
                reference = analyze_timing(
                    circuit, input_arrivals=tcache.input_arrivals,
                    compiled=False)
                assert tcache.arrivals() == reference.arrivals
                assert tcache.delay() == reference.delay
                assert tcache.critical_path() == reference.critical_path
        finally:
            tcache.close()
            cache.close()

    @settings(max_examples=10, deadline=None)
    @given(st.lists(edit_specs(), min_size=1, max_size=6))
    def test_compiled_retime_counts_match_object_path(self, master, specs):
        """Early cut-off must recompute the same set either way."""
        circuit_master, stats = master
        circuit = circuit_master.copy()
        current = dict(stats)
        cache = StatsCache(circuit, current, compiled=False)
        tcache = TimingCache(circuit, index=cache.index, compiled=True)
        ref = TimingCache(circuit, index=cache.index, compiled=False)
        try:
            for spec in specs:
                if spec[0] == "input-arrival":
                    # keep both caches on identical input arrivals
                    net = circuit.inputs[spec[1] % len(circuit.inputs)]
                    ref.set_input_arrival(net, 1.0e-12 * (spec[2] % 503))
                apply_spec(circuit, cache, tcache, current, spec)
                changed = tcache.refresh()
                assert changed == ref.refresh()
                assert tcache.gates_retimed == ref.gates_retimed
        finally:
            ref.close()
            tcache.close()
            cache.close()


# ----------------------------------------------------------------------
# Integration: the search engine on compiled kernels
# ----------------------------------------------------------------------
class TestSearchIntegration:
    def test_greedy_search_artifact_identical(self, master):
        circuit, stats = master
        plain = search_circuit(circuit, stats, objective="power-delay",
                               seed=3, compiled=False)
        flat = search_circuit(circuit, stats, objective="power-delay",
                              seed=3, compiled=True)
        assert dumps_artifact(strip_timing(plain.to_artifact())) \
            == dumps_artifact(strip_timing(flat.to_artifact()))

    def test_anneal_search_artifact_identical(self, master):
        circuit, stats = master
        plain = search_circuit(circuit, stats, strategy="anneal", seed=11,
                               anneal_trials=60, compiled=False)
        flat = search_circuit(circuit, stats, strategy="anneal", seed=11,
                              anneal_trials=60, compiled=True)
        assert dumps_artifact(strip_timing(plain.to_artifact())) \
            == dumps_artifact(strip_timing(flat.to_artifact()))


# ----------------------------------------------------------------------
# Feature flag
# ----------------------------------------------------------------------
class TestFlag:
    def test_explicit_overrides(self):
        assert use_compiled(True) is True
        assert use_compiled(False) is False

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        assert use_compiled(None) is False
        monkeypatch.setenv("REPRO_COMPILED", "1")
        assert use_compiled(None) is True
        assert isinstance(make_backend("analytic"), CompiledAnalyticBackend)
        monkeypatch.setenv("REPRO_COMPILED", "off")
        assert use_compiled(None) is False
        backend = make_backend("analytic")
        assert isinstance(backend, AnalyticBackend)
        assert not isinstance(backend, CompiledAnalyticBackend)

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "maybe")
        with pytest.raises(ValueError):
            use_compiled(None)

    def test_string_arguments_parse_like_the_env(self):
        # a caller forwarding compiled="0" from its own environment or
        # argv means *off*; bool("0") would have silently meant *on*.
        for spelling in ("1", "true", "YES", " on ", "yes"):
            assert use_compiled(spelling) is True
        for spelling in ("", "0", "false", "No", " OFF "):
            assert use_compiled(spelling) is False
        with pytest.raises(ValueError):
            use_compiled("maybe")

    def test_compiled_backend_keeps_the_analytic_name(self):
        assert CompiledAnalyticBackend().name == "analytic"

    def test_sampled_routes_explicit_compiled(self):
        # the sampled estimator now has a compiled twin; an already-
        # constructed instance still conflicts with the flag.
        from repro.compiled.sampled import CompiledSampledBackend

        backend = make_backend("sampled", compiled=True)
        assert isinstance(backend, CompiledSampledBackend)
        with pytest.raises(TypeError):
            make_backend(backend, compiled=True)


# ----------------------------------------------------------------------
# Memoised structure (FanoutIndex / topo order / levels)
# ----------------------------------------------------------------------
class TestStructureMemo:
    def test_two_caches_share_one_index(self, master):
        circuit, stats = master
        work = circuit.copy()
        with StatsCache(work, stats) as cache:
            with TimingCache(work) as tcache:
                assert cache.index is tcache.index
                assert cache.index is work.fanout_index()

    def test_topo_and_levels_are_memoised(self, master):
        circuit, _ = master
        work = circuit.copy()
        assert work.topo_gates() is work.topo_gates()
        assert work.gate_levels() is work.gate_levels()

    def test_structural_mutation_invalidates(self, master):
        circuit, _ = master
        work = circuit.copy()
        index = work.fanout_index()
        compiled = get_compiled(work)
        assert get_compiled(work) is compiled
        source = work.inputs[0]
        work.add_gate("fresh_inv", "inv", {"a": source}, "fresh_net")
        assert work.fanout_index() is not index
        rebuilt = get_compiled(work)
        assert rebuilt is not compiled
        assert "fresh_inv" in rebuilt.gate_id

    def test_edits_keep_the_memo(self, master):
        circuit, _ = master
        work = circuit.copy()
        index = work.fanout_index()
        compiled = get_compiled(work)
        gate = next(g for g in work.gates
                    if g.template.num_configurations() > 1)
        work.set_config(gate.name, gate.template.configurations()[-1])
        assert work.fanout_index() is index
        assert get_compiled(work) is compiled
