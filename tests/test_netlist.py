"""Tests for mapped netlists and topological traversals."""

import pytest

from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.topology import (
    levelize,
    reachable_from_outputs,
    topological_gates,
    transitive_fanin,
)
from repro.gates.capacitance import TechParams
from repro.gates.library import default_library

LIB = default_library()


def two_level_circuit():
    """y = !( !(a&b) & !(c&d) ) — an AND-OR built from NANDs."""
    c = Circuit("and_or", LIB)
    for net in ("a", "b", "c", "d"):
        c.add_input(net)
    c.add_output("y")
    c.add_gate("g0", "nand2", {"a": "a", "b": "b"}, "n1")
    c.add_gate("g1", "nand2", {"a": "c", "b": "d"}, "n2")
    c.add_gate("g2", "nand2", {"a": "n1", "b": "n2"}, "y")
    return c


class TestConstruction:
    def test_basic(self):
        c = two_level_circuit()
        c.validate()
        assert len(c) == 3
        assert c.driver("y").name == "g2"
        assert c.driver("a") is None

    def test_duplicate_gate_name(self):
        c = two_level_circuit()
        with pytest.raises(CircuitError):
            c.add_gate("g0", "inv", {"a": "a"}, "z")

    def test_multiple_drivers_rejected(self):
        c = two_level_circuit()
        with pytest.raises(CircuitError):
            c.add_gate("g3", "inv", {"a": "a"}, "n1")

    def test_driving_primary_input_rejected(self):
        c = two_level_circuit()
        with pytest.raises(CircuitError):
            c.add_gate("g3", "inv", {"a": "n1"}, "a")

    def test_wrong_pins_rejected(self):
        c = two_level_circuit()
        with pytest.raises(CircuitError):
            c.add_gate("g3", "nand2", {"a": "a"}, "z")  # missing pin b
        with pytest.raises(CircuitError):
            c.add_gate("g4", "inv", {"a": "a", "x": "b"}, "z")

    def test_undriven_net_detected(self):
        c = Circuit("bad", LIB)
        c.add_input("a")
        c.add_output("y")
        c.add_gate("g0", "nand2", {"a": "a", "b": "ghost"}, "y")
        with pytest.raises(CircuitError):
            c.validate()

    def test_undriven_output_detected(self):
        c = Circuit("bad", LIB)
        c.add_input("a")
        c.add_output("y")
        with pytest.raises(CircuitError):
            c.validate()

    def test_duplicate_io(self):
        c = Circuit("bad", LIB)
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_input("a")
        c.add_output("y")
        with pytest.raises(CircuitError):
            c.add_output("y")


class TestQueries:
    def test_fanout(self):
        c = two_level_circuit()
        sinks = c.fanout("n1")
        assert [(g.name, pin) for g, pin in sinks] == [("g2", "a")]

    def test_nets(self):
        c = two_level_circuit()
        assert set(c.nets()) == {"a", "b", "c", "d", "n1", "n2", "y"}

    def test_output_load_counts_pins_and_po(self):
        c = two_level_circuit()
        tech = TechParams()
        # n1 feeds one nand2 pin: 2 gate terminals.
        assert c.output_load("n1", tech, po_load=0.0) == pytest.approx(2 * tech.c_gate)
        # y is a primary output with no fanout.
        assert c.output_load("y", tech, po_load=7e-15) == pytest.approx(7e-15)

    def test_gate_count_by_template(self):
        c = two_level_circuit()
        assert c.gate_count_by_template() == {"nand2": 3}

    def test_transistor_count_and_area(self):
        c = two_level_circuit()
        assert c.transistor_count() == 12
        assert c.area() == 12.0

    def test_copy_independent(self):
        c = two_level_circuit()
        clone = c.copy()
        clone.gate("g0").config = LIB["nand2"].configurations()[1]
        assert c.gate("g0").config is None

    def test_evaluate(self):
        c = two_level_circuit()
        values = c.evaluate({"a": True, "b": True, "c": False, "d": False})
        # y = (a&b) | (c&d) = 1
        assert values["y"] is True
        values = c.evaluate({"a": True, "b": False, "c": False, "d": True})
        assert values["y"] is False


class TestTopology:
    def test_topological_order(self):
        c = two_level_circuit()
        order = [g.name for g in topological_gates(c)]
        assert order.index("g2") > order.index("g0")
        assert order.index("g2") > order.index("g1")

    def test_cycle_detected(self):
        c = Circuit("cyc", LIB)
        c.add_input("a")
        c.add_output("y")
        c.add_gate("g0", "nand2", {"a": "a", "b": "n2"}, "n1")
        c.add_gate("g1", "inv", {"a": "n1"}, "n2")
        c.add_gate("g2", "inv", {"a": "n1"}, "y")
        with pytest.raises(CircuitError):
            topological_gates(c)
        with pytest.raises(CircuitError):
            c.validate()

    def test_levelize(self):
        c = two_level_circuit()
        levels = levelize(c)
        assert levels["g0"] == 0 and levels["g1"] == 0 and levels["g2"] == 1

    def test_transitive_fanin(self):
        c = two_level_circuit()
        cone = [g.name for g in transitive_fanin(c, "n1")]
        assert cone == ["g0"]
        cone = [g.name for g in transitive_fanin(c, "y")]
        assert set(cone) == {"g0", "g1", "g2"}

    def test_reachable_from_outputs_drops_dangling(self):
        c = two_level_circuit()
        c.add_gate("dangling", "inv", {"a": "a"}, "unused")
        reachable = {g.name for g in reachable_from_outputs(c)}
        assert reachable == {"g0", "g1", "g2"}
