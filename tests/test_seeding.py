"""Seeding discipline: every stochastic entry point is deterministic.

Locks down the satellite fix of this PR: per-case experiment seeds are
process-stable (CRC-based, not :func:`hash`-based), the scenario
generators default to seed 0, and the simulators take explicit seeds
(unseeded bit-parallel runs warn and fall back deterministically).
"""

import numpy as np
import pytest

from repro.analysis.experiments import case_seed, run_table3_case
from repro.bench.suite import get_case
from repro.sim.bitsim import sampled_stats
from repro.sim.stimulus import ScenarioA, ScenarioB
from repro.stochastic.signal import SignalStats
from repro.synth.mapper import map_circuit


class TestCaseSeed:
    def test_known_values_locked(self):
        """CRC-based seeds must never change: golden artifacts depend on
        them.  (hash()-based seeds varied per interpreter process.)"""
        assert case_seed("c17", 0) == 4374
        assert case_seed("maj3", 0) == 1454
        assert case_seed("fa1", 0) == 7292
        assert case_seed("rnd_a", 0) == 5259

    def test_base_seed_shifts(self):
        assert case_seed("c17", 7) == case_seed("c17", 0) + 7

    def test_distinct_per_case(self):
        names = ["c17", "maj3", "fa1", "rca4", "mult2", "parity8"]
        seeds = {case_seed(name, 0) for name in names}
        assert len(seeds) == len(names)


class TestScenarioDeterminism:
    def test_default_construction_is_deterministic(self):
        a1 = ScenarioA().generate(("x", "y"), duration=1e-5)
        a2 = ScenarioA().generate(("x", "y"), duration=1e-5)
        assert a1.waveforms == a2.waveforms
        b1 = ScenarioB().generate(("x", "y"), cycles=40)
        b2 = ScenarioB().generate(("x", "y"), cycles=40)
        assert b1.waveforms == b2.waveforms

    def test_explicit_seed_changes_waveforms(self):
        base = ScenarioA(seed=0).generate(("x",), duration=1e-5)
        other = ScenarioA(seed=1).generate(("x",), duration=1e-5)
        assert base.waveforms != other.waveforms


class TestSimulatorSeeds:
    def test_sampled_stats_deterministic_and_seeded(self):
        circuit = map_circuit(get_case("maj3").network())
        stats = {n: SignalStats(0.5, 1.0e6) for n in circuit.inputs}
        a = sampled_stats(circuit, stats, lanes=256, steps=8, seed=3)
        b = sampled_stats(circuit, stats, lanes=256, steps=8, seed=3)
        assert a == b
        c = sampled_stats(circuit, stats, lanes=256, steps=8, seed=4)
        assert a != c

    def test_sampled_stats_unseeded_warns(self):
        circuit = map_circuit(get_case("maj3").network())
        stats = {n: SignalStats(0.5, 1.0e6) for n in circuit.inputs}
        with pytest.warns(UserWarning, match="seed"):
            warned = sampled_stats(circuit, stats, lanes=64, steps=4, seed=None)
        assert warned == sampled_stats(circuit, stats, lanes=64, steps=4, seed=0)


class TestExperimentDeterminism:
    def test_table3_case_reproducible(self):
        case = get_case("maj3")
        first = run_table3_case(case, "B", seed=0)
        second = run_table3_case(case, "B", seed=0)
        assert first == second

    def test_premapped_circuit_matches_internal_mapping(self):
        case = get_case("maj3")
        circuit = map_circuit(case.network())
        internal = run_table3_case(case, "A", seed=0)
        premapped = run_table3_case(case, "A", seed=0, circuit=circuit)
        assert internal == premapped
        # And the supplied netlist was not mutated by the optimisation.
        assert all(g.config is None for g in circuit.gates)
