"""Tests for the event-driven switch-level power simulator."""

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.core.optimizer import circuit_power
from repro.gates.capacitance import TechParams
from repro.gates.library import default_library
from repro.sim.stimulus import ScenarioA, ScenarioB, Stimulus
from repro.sim.switchsim import SwitchLevelSimulator
from repro.stochastic.density import local_stats
from repro.stochastic.signal import SignalStats, markov_waveform

LIB = default_library()
TECH = TechParams()


def inverter_circuit():
    c = Circuit("inv1", LIB)
    c.add_input("x")
    c.add_output("y")
    c.add_gate("g0", "inv", {"a": "x"}, "y")
    return c


def small_circuit():
    c = Circuit("small", LIB)
    for n in ("a", "b", "c"):
        c.add_input(n)
    c.add_output("y")
    c.add_gate("g0", "nand2", {"a": "a", "b": "b"}, "n0")
    c.add_gate("g1", "oai21", {"a": "n0", "b": "b", "c": "c"}, "y")
    return c


def square_wave(period: float, duration: float, initial=0):
    times = tuple(np.arange(period / 2, duration, period / 2))
    return (initial, times)


class TestBasics:
    def test_inverter_counts_every_transition(self):
        c = inverter_circuit()
        # 10 input toggles over 1 us.
        waveform = square_wave(2e-7, 1e-6)
        stats = {"x": SignalStats(0.5, 1e7)}
        stimulus = Stimulus(stats, {"x": waveform}, 1e-6)
        report = SwitchLevelSimulator(c, TECH).run(stimulus)
        assert report.net_transitions["x"] == len(waveform[1])
        assert report.net_transitions["y"] == len(waveform[1])

    def test_energy_accounting(self):
        c = inverter_circuit()
        waveform = square_wave(2e-7, 1e-6)
        stimulus = Stimulus({"x": SignalStats(0.5, 1e7)}, {"x": waveform}, 1e-6)
        sim = SwitchLevelSimulator(c, TECH, po_load=5e-15)
        report = sim.run(stimulus)
        # The inverter has no internal nodes; output energy is
        # transitions * 0.5 V^2 * C_out.
        c_out = sim._net_cap["y"]
        expected = len(waveform[1]) * TECH.switch_energy_factor * c_out
        assert report.gate_energy["g0"].output == pytest.approx(expected)
        assert report.gate_energy["g0"].internal == 0.0
        assert report.power == pytest.approx(report.energy / 1e-6)

    def test_constant_inputs_consume_nothing(self):
        c = small_circuit()
        stats = {n: SignalStats.constant(False) for n in c.inputs}
        stimulus = Stimulus(stats, {n: (0, ()) for n in c.inputs}, 1e-6)
        report = SwitchLevelSimulator(c, TECH).run(stimulus)
        assert report.energy == 0.0

    def test_missing_waveforms_raise(self):
        c = small_circuit()
        stimulus = Stimulus({}, {"a": (0, ())}, 1e-6)
        with pytest.raises(KeyError):
            SwitchLevelSimulator(c, TECH).run(stimulus)

    def test_invalid_delay_mode(self):
        with pytest.raises(ValueError):
            SwitchLevelSimulator(small_circuit(), TECH, delay_mode="warp")

    def test_measured_stats_of_constant_net(self):
        c = small_circuit()
        stats = {n: SignalStats.constant(True) for n in c.inputs}
        stimulus = Stimulus(stats, {n: (1, ()) for n in c.inputs}, 1e-6)
        report = SwitchLevelSimulator(c, TECH).run(stimulus)
        # a=b=1 -> n0 = 0; y = !((n0|b)&c) = !((0|1)&1) = 0.
        assert report.measured_stats("n0").probability == 0.0
        assert report.measured_stats("y").probability == 0.0


class TestAgainstModel:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_densities_match_propagation(self, seed):
        """Zero-delay simulation reproduces the exact density propagation.

        The circuit reconverges (pin b feeds both gates), so the *exact*
        BDD engine is the right reference; the local engine would
        overestimate — which is the point of ablation A3.
        """
        from repro.stochastic.density import exact_stats

        c = small_circuit()
        scenario = ScenarioA(seed=seed, density_max=1e6)
        stats = scenario.input_stats(c.inputs)
        duration = 3000.0 / 1e6
        stimulus = scenario.generate(c.inputs, duration)
        report = SwitchLevelSimulator(c, TECH, delay_mode="zero").run(stimulus)
        predicted = exact_stats(c, stimulus.stats)
        for net in ("n0", "y"):
            measured = report.measured_stats(net)
            assert measured.density == pytest.approx(
                predicted[net].density, rel=0.25
            ), net
            assert measured.probability == pytest.approx(
                predicted[net].probability, abs=0.1
            ), net

    def test_power_matches_model_on_small_circuit(self):
        c = small_circuit()
        scenario = ScenarioA(seed=3)
        stats = scenario.input_stats(c.inputs)
        duration = 2000.0 / 1e6
        stimulus = scenario.generate(c.inputs, duration)
        sim_power = SwitchLevelSimulator(c, TECH).run(stimulus).power
        model_power = circuit_power(c, stimulus.stats).total
        assert sim_power == pytest.approx(model_power, rel=0.3)


class TestGlitches:
    def _glitch_circuit(self):
        """y = nand(a, inv(a)) — a hazard when 'a' toggles."""
        c = Circuit("glitch", LIB)
        c.add_input("a")
        c.add_output("y")
        c.add_gate("g0", "inv", {"a": "a"}, "abar")
        c.add_gate("g1", "nand2", {"a": "a", "b": "abar"}, "y")
        return c

    def test_transport_delay_produces_glitches(self):
        c = self._glitch_circuit()
        waveform = square_wave(2e-8, 1e-6)
        stimulus = Stimulus({"a": SignalStats(0.5, 1e8)}, {"a": waveform}, 1e-6)
        report = SwitchLevelSimulator(c, TECH, delay_mode="elmore").run(stimulus)
        # Statically y == 1 always, but the unequal arrival of a and
        # !a produces useless transitions (the paper's motivation).
        assert report.net_transitions["y"] > 0

    def test_zero_delay_hides_those_glitches(self):
        c = self._glitch_circuit()
        waveform = square_wave(2e-8, 1e-6)
        stimulus = Stimulus({"a": SignalStats(0.5, 1e8)}, {"a": waveform}, 1e-6)
        report = SwitchLevelSimulator(c, TECH, delay_mode="zero").run(stimulus)
        assert report.net_transitions["y"] == 0

    def test_inertial_filter_reduces_activity(self):
        c = self._glitch_circuit()
        waveform = square_wave(2e-8, 1e-6)
        stimulus = Stimulus({"a": SignalStats(0.5, 1e8)}, {"a": waveform}, 1e-6)
        transport = SwitchLevelSimulator(c, TECH, inertial=False).run(stimulus)
        inertial = SwitchLevelSimulator(c, TECH, inertial=True).run(stimulus)
        assert inertial.net_transitions["y"] <= transport.net_transitions["y"]


class TestReorderingVisibleInSimulation:
    def test_best_config_beats_worst_in_simulation(self):
        """End-to-end: the model's choice wins at switch level too."""
        from repro.core.optimizer import optimize_circuit

        c = small_circuit()
        scenario = ScenarioA(seed=11)
        stats = scenario.input_stats(c.inputs)
        stimulus = scenario.generate(c.inputs, duration=4000.0 / 1e6)
        best = optimize_circuit(c, stats, objective="best")
        worst = optimize_circuit(c, stats, objective="worst")
        p_best = SwitchLevelSimulator(best.circuit, TECH).run(stimulus).power
        p_worst = SwitchLevelSimulator(worst.circuit, TECH).run(stimulus).power
        assert p_best < p_worst
