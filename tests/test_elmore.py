"""Tests for Elmore stack delays and static timing analysis."""

import pytest

from repro.circuit.netlist import Circuit
from repro.gates import sptree
from repro.gates.capacitance import TechParams
from repro.gates.library import GateConfig, default_library
from repro.gates.sptree import Leaf, Parallel, Series
from repro.timing.elmore import (
    gate_pin_delay,
    gate_worst_delay,
    min_path_resistance,
    stack_delay,
)
from repro.timing.sta import analyze_timing, circuit_delay

LIB = default_library()
TECH = TechParams()


def _delay_with(circuit, config, arrivals):
    circuit.gate("g0").config = config
    return analyze_timing(circuit, input_arrivals=arrivals).delay


class TestMinPathResistance:
    def test_leaf(self):
        assert min_path_resistance(Leaf("a"), TECH, "n") == TECH.r_n
        assert min_path_resistance(Leaf("a"), TECH, "p") == TECH.r_p

    def test_series_sums(self):
        t = Series((Leaf("a"), Leaf("b"), Leaf("c")))
        assert min_path_resistance(t, TECH, "n") == pytest.approx(3 * TECH.r_n)

    def test_parallel_takes_min(self):
        t = Parallel((Series((Leaf("a"), Leaf("b"))), Leaf("c")))
        assert min_path_resistance(t, TECH, "n") == pytest.approx(TECH.r_n)


class TestStackDelay:
    def test_critical_input_near_output_is_faster(self):
        """The classic rule of thumb the paper quotes (§5)."""
        chain = Series((Leaf("a"), Leaf("b"), Leaf("c")))  # a at the output
        c_out = 20e-15
        d_top = stack_delay(chain, "a", c_out, TECH, "n")
        d_mid = stack_delay(chain, "b", c_out, TECH, "n")
        d_bot = stack_delay(chain, "c", c_out, TECH, "n")
        assert d_top < d_mid < d_bot

    def test_unknown_pin_raises(self):
        with pytest.raises(KeyError):
            stack_delay(Leaf("a"), "z", 1e-15, TECH, "n")

    def test_delay_positive_and_scales_with_load(self):
        chain = Series((Leaf("a"), Leaf("b")))
        d1 = stack_delay(chain, "a", 10e-15, TECH, "n")
        d2 = stack_delay(chain, "a", 40e-15, TECH, "n")
        assert 0.0 < d1 < d2

    def test_parallel_branch_selection(self):
        t = Series((Parallel((Leaf("a"), Leaf("b"))), Leaf("c")))
        # Both parallel pins see the same topology -> equal delays.
        da = stack_delay(t, "a", 10e-15, TECH, "n")
        db = stack_delay(t, "b", 10e-15, TECH, "n")
        assert da == pytest.approx(db)

    def test_inverter_delay(self):
        d = stack_delay(Leaf("a"), "a", 10e-15, TECH, "n")
        # ln2 * R * C with only the output cap.
        assert d == pytest.approx(0.693 * TECH.r_n * 10e-15, rel=0.01)


class TestGateDelays:
    def test_gate_pin_delay_covers_both_transitions(self):
        template = LIB["nand2"]
        gate = template.compile_config()
        config = template.default_config()
        load = 10e-15
        d = gate_pin_delay(gate, config, "a", TECH, load)
        out_cap = gate.terminal_counts["y"] * TECH.c_diff + TECH.c_wire + load
        fall = stack_delay(config.pdn, "a", out_cap, TECH, "n")
        assert d >= fall  # max of rise and fall

    def test_ordering_changes_pin_delay(self):
        template = LIB["nand3"]
        gate = template.compile_config()
        configs = template.configurations()
        delays = {
            c.key(): gate_pin_delay(template.compile_config(c), c, "a", TECH, 10e-15)
            for c in configs
        }
        assert len(set(round(d, 15) for d in delays.values())) > 1

    def test_worst_delay_is_max_over_pins(self):
        template = LIB["oai21"]
        gate = template.compile_config()
        config = template.default_config()
        worst = gate_worst_delay(gate, config, TECH, 10e-15)
        per_pin = [
            gate_pin_delay(gate, config, p, TECH, 10e-15) for p in gate.inputs
        ]
        assert worst == pytest.approx(max(per_pin))


class TestSTA:
    def _chain_circuit(self, length=3):
        c = Circuit("chain", LIB)
        c.add_input("x")
        prev = "x"
        for i in range(length):
            c.add_gate(f"g{i}", "inv", {"a": prev}, f"n{i}")
            prev = f"n{i}"
        c.add_output(prev)
        return c

    def test_chain_delay_accumulates(self):
        d1 = circuit_delay(self._chain_circuit(1))
        d3 = circuit_delay(self._chain_circuit(3))
        assert d3 > d1 > 0.0

    def test_arrival_monotone_along_path(self):
        c = self._chain_circuit(4)
        report = analyze_timing(c)
        arrivals = [report.arrival("x")] + [report.arrival(f"n{i}") for i in range(4)]
        assert arrivals == sorted(arrivals)

    def test_critical_path_endpoints(self):
        c = self._chain_circuit(3)
        report = analyze_timing(c)
        assert report.critical_path[0] == "x"
        assert report.critical_path[-1] == "n2"
        assert report.delay == report.arrival("n2")

    def test_input_arrivals_shift_delay(self):
        c = self._chain_circuit(2)
        base = analyze_timing(c).delay
        shifted = analyze_timing(c, input_arrivals={"x": 1e-9}).delay
        assert shifted == pytest.approx(base + 1e-9)

    def test_reordering_changes_circuit_delay(self):
        """With a late-arriving input, its stack position matters."""
        c = Circuit("t", LIB)
        for n in ("a", "b", "c"):
            c.add_input(n)
        c.add_output("y")
        c.add_gate("g0", "nand3", {"a": "a", "b": "b", "c": "c"}, "y")
        arrivals = {"a": 3e-10, "b": 0.0, "c": 0.0}  # a is critical
        delays = set()
        for config in LIB["nand3"].configurations():
            c.gate("g0").config = config
            report = analyze_timing(c, input_arrivals=arrivals)
            delays.add(round(report.delay, 15))
        assert len(delays) > 1
        # The fastest ordering puts the critical transistor at the output:
        # that is the configuration with pdn chain starting with 'a'.
        from repro.gates.sptree import Leaf, Series

        best_config = min(
            LIB["nand3"].configurations(),
            key=lambda cfg: (
                _delay_with(c, cfg, arrivals), cfg.key()
            ),
        )
        assert best_config.pdn.children[0] == Leaf("a")

    def test_empty_outputs_reports_zero(self):
        c = Circuit("empty", LIB)
        c.add_input("a")
        report = analyze_timing(c)
        assert report.delay == 0.0 and report.critical_path == ()
