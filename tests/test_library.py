"""Tests for the Table 2 gate library."""

import pytest

from repro.boolean.expr import parse_expr
from repro.gates import sptree
from repro.gates.library import (
    TABLE2_GATES,
    GateLibrary,
    GateTemplate,
    default_library,
)

#: The configuration counts of the paper's Table 2 (plus nand4/nor2).
EXPECTED_CONFIG_COUNTS = {
    "inv": 1,
    "nand2": 2,
    "nand3": 6,
    "nand4": 24,
    "nor2": 2,
    "nor3": 6,
    "nor4": 24,
    "aoi21": 4,
    "aoi22": 8,
    "aoi211": 12,
    "aoi221": 24,
    "aoi222": 48,
    "oai21": 4,
    "oai22": 8,
    "oai211": 12,
    "oai221": 24,
    "oai222": 48,
}


@pytest.fixture(scope="module")
def library():
    return default_library()


class TestTable2:
    def test_all_gates_present(self, library):
        assert set(library.names) == set(TABLE2_GATES)

    def test_configuration_counts_match_table2(self, library):
        counts = dict(library.configuration_table())
        assert counts == EXPECTED_CONFIG_COUNTS

    def test_enumerated_configs_match_declared_count(self, library):
        for template in library:
            configs = template.configurations()
            assert len(configs) == template.num_configurations()
            assert len({c.key() for c in configs}) == len(configs)

    def test_all_configs_same_function(self, library):
        for template in library:
            reference = template.function()
            for config in template.configurations():
                compiled = template.compile_config(config)
                assert compiled.output_tt == reference, template.name

    def test_all_configs_same_area(self, library):
        """The paper: every instance of a gate has the same area."""
        for template in library:
            counts = {
                len(template.compile_config(c).network.transistors)
                for c in template.configurations()
            }
            assert counts == {template.num_transistors}


class TestGateTemplate:
    def test_function_nand2(self, library):
        tt = library["nand2"].function()
        assert tt == parse_expr("!(a & b)").to_truthtable(("a", "b"))

    def test_function_aoi221(self, library):
        tt = library["aoi221"].function()
        expected = parse_expr("!((a & b) | (c & d) | e)").to_truthtable(
            ("a", "b", "c", "d", "e")
        )
        assert tt == expected

    def test_num_transistors(self, library):
        assert library["inv"].num_transistors == 2
        assert library["nand3"].num_transistors == 6
        assert library["aoi222"].num_transistors == 12

    def test_default_config_is_canonical(self, library):
        t = library["oai21"]
        config = t.default_config()
        assert config.pdn == t.pdn
        assert sptree.canonical_key(config.pun) == sptree.canonical_key(
            sptree.dual(t.pdn)
        )

    def test_compile_config_cached(self, library):
        t = library["nand2"]
        assert t.compile_config() is t.compile_config()

    def test_repeated_signal_rejected(self):
        with pytest.raises(ValueError):
            GateTemplate("bad", "a & a", ("a",))

    def test_pin_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GateTemplate("bad", "a & b", ("a", "c"))


class TestGateLibrary:
    def test_duplicate_rejected(self, library):
        lib = GateLibrary([GateTemplate("inv", "a", ("a",))])
        with pytest.raises(ValueError):
            lib.add(GateTemplate("inv", "a", ("a",)))

    def test_lookup(self, library):
        assert library["nand2"].name == "nand2"
        assert "nand2" in library
        assert "xor9" not in library

    def test_len_and_iter(self, library):
        assert len(library) == len(TABLE2_GATES)
        assert {t.name for t in library} == set(TABLE2_GATES)

    def test_max_inputs(self, library):
        assert library.max_inputs() == 6
