"""Tests for structural Verilog writing and parsing."""

import itertools

import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.verilog import VerilogError, parse_verilog, write_verilog
from repro.gates.library import default_library
from repro.sim.logicsim import check_equivalence

LIB = default_library()


def sample_circuit():
    c = Circuit("sample", LIB)
    for n in ("a", "b", "c"):
        c.add_input(n)
    c.add_output("y")
    c.add_gate("g0", "nand2", {"a": "a", "b": "b"}, "n0")
    c.add_gate("g1", "aoi21", {"a": "n0", "b": "b", "c": "c"}, "y")
    return c


class TestWriter:
    def test_structure(self):
        text = write_verilog(sample_circuit())
        assert text.startswith("module sample (")
        assert "endmodule" in text
        assert "nand2 g0" in text
        assert ".O(" in text

    def test_sanitises_hostile_names(self):
        c = Circuit("weird-name", LIB)
        c.add_input("a[3]")
        c.add_output("out.2")
        c.add_gate("g0", "inv", {"a": "a[3]"}, "out.2")
        text = write_verilog(c)
        assert "[3]" not in text.replace("// ", "")
        parse_verilog(text, LIB)  # must stay parseable

    def test_unique_after_sanitising(self):
        c = Circuit("clash", LIB)
        c.add_input("n.1")
        c.add_input("n_1")
        c.add_output("y")
        c.add_gate("g0", "nand2", {"a": "n.1", "b": "n_1"}, "y")
        text = write_verilog(c)
        back = parse_verilog(text, LIB)
        assert len(back.inputs) == 2
        assert len(set(back.inputs)) == 2


class TestRoundTrip:
    def test_equivalent_after_roundtrip(self):
        circuit = sample_circuit()
        back = parse_verilog(write_verilog(circuit), LIB)
        assert len(back) == len(circuit)
        # Net names are unchanged here (already valid identifiers).
        for vector in itertools.product([False, True], repeat=3):
            env = dict(zip(("a", "b", "c"), vector))
            assert back.evaluate(env)["y"] == circuit.evaluate(env)["y"]

    def test_gate_mix_preserved(self):
        circuit = sample_circuit()
        back = parse_verilog(write_verilog(circuit), LIB)
        assert back.gate_count_by_template() == circuit.gate_count_by_template()


class TestParserErrors:
    def test_unknown_gate(self):
        text = "module m (a, y);\n input a;\n output y;\n xor9 g (.a(a), .O(y));\nendmodule\n"
        with pytest.raises(VerilogError):
            parse_verilog(text, LIB)

    def test_missing_output_pin(self):
        text = "module m (a, y);\n input a;\n output y;\n inv g (.a(a));\nendmodule\n"
        with pytest.raises(VerilogError):
            parse_verilog(text, LIB)

    def test_undeclared_port(self):
        text = "module m (a, y, z);\n input a;\n output y;\n inv g (.a(a), .O(y));\nendmodule\n"
        with pytest.raises(VerilogError):
            parse_verilog(text, LIB)

    def test_truncated(self):
        with pytest.raises(VerilogError):
            parse_verilog("module m (a);\n input a;\n", LIB)

    def test_comments_stripped(self):
        text = ("// header\nmodule m (a, y);\n input a;\n output y;\n"
                " /* block\n comment */ inv g (.a(a), .O(y));\nendmodule\n")
        circuit = parse_verilog(text, LIB)
        assert len(circuit) == 1
