"""Tests for the zero-delay logic-simulation utilities."""

import numpy as np
import pytest

from repro.bench.generators import parity_tree
from repro.circuit.blif import parse_blif
from repro.circuit.netlist import Circuit
from repro.gates.library import default_library
from repro.sim.logicsim import (
    check_equivalence,
    count_toggles,
    exhaustive_vectors,
    outputs_equal,
    random_vectors,
)

LIB = default_library()


def nand_circuit():
    c = Circuit("n", LIB)
    c.add_input("a")
    c.add_input("b")
    c.add_output("y")
    c.add_gate("g0", "nand2", {"a": "a", "b": "b"}, "y")
    return c


def and_network():
    return parse_blif(
        ".model n\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
    )


class TestVectors:
    def test_exhaustive_count(self):
        vectors = exhaustive_vectors(["a", "b", "c"])
        assert len(vectors) == 8
        assert len({tuple(sorted(v.items())) for v in vectors}) == 8

    def test_exhaustive_limit(self):
        with pytest.raises(ValueError):
            exhaustive_vectors([f"x{i}" for i in range(21)])

    def test_random_deterministic(self):
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        assert random_vectors(["a"], 5, rng1) == random_vectors(["a"], 5, rng2)


class TestEquivalence:
    def test_circuit_vs_network(self):
        assert check_equivalence(nand_circuit(), and_network())

    def test_detects_difference(self):
        c = nand_circuit()
        different = parse_blif(
            ".model n\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"
        )
        assert not check_equivalence(c, different)

    def test_io_mismatch_rejected(self):
        other = parse_blif(
            ".model m\n.inputs a c\n.outputs y\n.names a c y\n11 0\n.end\n"
        )
        with pytest.raises(ValueError):
            check_equivalence(nand_circuit(), other)

    def test_outputs_equal_single_vector(self):
        assert outputs_equal(nand_circuit(), and_network(),
                             {"a": True, "b": False})


class TestToggleCounting:
    def test_counts(self):
        c = nand_circuit()
        vectors = [
            {"a": False, "b": False},  # y=1
            {"a": True, "b": True},    # y=0
            {"a": True, "b": False},   # y=1
        ]
        toggles = count_toggles(c, vectors)
        assert toggles["y"] == 2
        assert toggles["a"] == 1
        assert toggles["b"] == 2

    def test_parity_toggles_with_any_input(self):
        network = parity_tree(4)
        vectors = exhaustive_vectors(list(network.inputs))
        toggles = count_toggles(network, vectors)
        out = network.outputs[0]
        assert toggles[out] > 0
