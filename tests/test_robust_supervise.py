"""Tests for the worker supervisor (`repro.robust.supervise`)."""

import os

import pytest

from repro.robust import SupervisedRun, TaskOutcome, run_supervised

# Worker functions must be importable from the child process (fork or
# spawn), so they live at module scope.


def _double(payload):
    return payload * 2


def _crash_on_odd(payload):
    if payload % 2:
        raise ValueError(f"odd payload {payload}")
    return payload


def _die_on_three(payload):
    if payload == 3:
        os._exit(9)  # no exception, no pipe message: a hard crash
    return payload


def _sleep_forever(payload):
    import time

    time.sleep(600)


def _flaky_once(payload):
    """Fails on the first attempt per state dir, succeeds on retry."""
    marker = os.path.join(os.environ["FLAKY_DIR"], f"{payload}.attempted")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return payload
    os.close(fd)
    os._exit(1)


class TestHappyPath:
    def test_results_in_payload_order(self):
        run = run_supervised(_double, [3, 1, 4, 1, 5], jobs=3)
        assert isinstance(run, SupervisedRun)
        assert not run.interrupted
        assert [o.value for o in run.outcomes] == [6, 2, 8, 2, 10]
        assert all(o.ok and o.attempts == 1 for o in run.outcomes)

    def test_single_job(self):
        run = run_supervised(_double, [1, 2], jobs=1)
        assert [o.value for o in run.outcomes] == [2, 4]

    def test_empty_payloads(self):
        run = run_supervised(_double, [], jobs=2)
        assert run.outcomes == []

    def test_on_complete_sees_every_task(self):
        seen = []
        run_supervised(_double, [1, 2, 3], jobs=2,
                       on_complete=lambda o, done, total: seen.append(
                           (o.index, done, total)))
        assert sorted(index for index, _, _ in seen) == [0, 1, 2]
        assert [done for _, done, _ in sorted(seen, key=lambda s: s[1])] \
            == [1, 2, 3]
        assert all(total == 3 for _, _, total in seen)


class TestFailurePaths:
    def test_exception_exhausts_retries(self):
        run = run_supervised(_crash_on_odd, [0, 1, 2], jobs=2,
                             retries=1, backoff_s=0.01)
        assert [o.status for o in run.outcomes] == ["ok", "error", "ok"]
        failed = run.outcomes[1]
        assert failed.attempts == 2  # first try + one retry
        assert "odd payload 1" in failed.error

    def test_completed_and_failed_partition(self):
        run = run_supervised(_crash_on_odd, [0, 1, 2], jobs=2,
                             retries=0, backoff_s=0.01)
        assert [o.index for o in run.completed] == [0, 2]
        assert [o.index for o in run.failed] == [1]

    def test_worker_death_detected(self):
        run = run_supervised(_die_on_three, [2, 3], jobs=2,
                             retries=0, backoff_s=0.01)
        assert run.outcomes[0].ok
        dead = run.outcomes[1]
        assert dead.status == "crashed"
        assert "exit code" in dead.error

    def test_crash_retried_then_succeeds(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FLAKY_DIR", str(tmp_path))
        run = run_supervised(_flaky_once, [7], jobs=1,
                             retries=2, backoff_s=0.01)
        outcome = run.outcomes[0]
        assert outcome.ok and outcome.value == 7
        assert outcome.attempts == 2

    def test_deadline_kills_hung_worker(self):
        run = run_supervised(_sleep_forever, [0], jobs=1,
                             retries=0, backoff_s=0.01, deadline_s=0.5)
        outcome = run.outcomes[0]
        assert outcome.status == "timeout"
        assert "deadline" in outcome.error

    def test_failure_does_not_sink_siblings(self):
        run = run_supervised(_die_on_three, [0, 1, 2, 3, 4], jobs=2,
                             retries=0, backoff_s=0.01)
        assert [o.status for o in run.outcomes] == \
            ["ok", "ok", "ok", "crashed", "ok"]


class TestOutcome:
    def test_ok_property(self):
        assert TaskOutcome(index=0, status="ok").ok
        assert not TaskOutcome(index=0, status="crashed").ok
