"""Bit-identity of the compiled power kernel (`repro.compiled.power`).

The contract under test: class-batched `CompiledPowerKernel` pricing —
per-minterm weights, steady-state guards, per-pin transition folds,
node capacitances and gate totals — is **bit-identical** (exact float
equality, every `NodePowerEntry` field) to the per-gate object path of
`GatePowerModel`, for all three formulas, under random edit sequences,
and through the `StatsCache` power refresh it backs in compiled mode.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_logic
from repro.compiled.circuit import get_compiled
from repro.compiled.power import CompiledPowerKernel
from repro.core.power_model import FORMULAS, GatePowerModel
from repro.gates.capacitance import net_load
from repro.incremental import StatsCache
from repro.sim.stimulus import ScenarioA
from repro.stochastic.signal import SignalStats
from repro.synth.mapper import map_circuit

PO_LOAD = 10.0e-15


@pytest.fixture(scope="module")
def wide():
    circuit = map_circuit(random_logic(12, 60, seed=9))
    stats = ScenarioA(seed=2).input_stats(circuit.inputs)
    return circuit, stats


def object_reports(circuit, model, stats, po_load):
    index = circuit.fanout_index()
    outputs = frozenset(circuit.outputs)
    reports = {}
    for gate in circuit.gates:
        pin_stats = {pin: stats[gate.pin_nets[pin]]
                     for pin in gate.template.pins}
        load = net_load(index.sinks(gate.output), gate.output in outputs,
                        model.tech, po_load)
        reports[gate.name] = model.gate_power(gate.compiled(), pin_stats,
                                              load)
    return reports


def assert_reports_equal(kernel_reports, reference):
    assert set(kernel_reports) == set(reference)
    for name, report in reference.items():
        batched = kernel_reports[name]
        assert batched.tech == report.tech
        assert len(batched.entries) == len(report.entries)
        for got, want in zip(batched.entries, report.entries):
            assert got.node == want.node
            assert got.capacitance == want.capacitance
            assert got.probability == want.probability
            assert got.transitions == want.transitions
            assert got.power == want.power
        assert batched.total == report.total


def edit_specs():
    return st.tuples(
        st.sampled_from(["reorder", "retemplate", "input-stats"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )


def apply_spec(circuit, input_stats, spec):
    kind, selector, value = spec
    if kind == "reorder":
        gates = [g for g in circuit.gates
                 if g.template.num_configurations() > 1]
        gate = gates[selector % len(gates)]
        configurations = gate.template.configurations()
        circuit.set_config(gate.name,
                           configurations[value % len(configurations)])
    elif kind == "retemplate":
        groups = {}
        for template in circuit.library:
            groups.setdefault(template.pins, []).append(template.name)
        gates = [g for g in circuit.gates
                 if len(groups[g.template.pins]) > 1]
        gate = gates[selector % len(gates)]
        others = [name for name in groups[gate.template.pins]
                  if name != gate.template.name]
        circuit.set_template(gate.name, others[value % len(others)])
    else:
        net = circuit.inputs[selector % len(circuit.inputs)]
        probability = 0.05 + 0.9 * ((value % 97) / 96.0)
        density = 1.0e4 * (1 + value % 89)
        input_stats[net] = SignalStats(probability, density)


# ----------------------------------------------------------------------
# The kernel against the object model
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    @pytest.mark.parametrize("formula", FORMULAS)
    def test_reports_bit_identical_all_formulas(self, wide, formula):
        circuit, input_stats = wide
        work = circuit.copy()
        model = GatePowerModel(formula=formula)
        from repro.stochastic.density import local_stats

        stats = local_stats(work, input_stats)
        kernel = CompiledPowerKernel(get_compiled(work), model)
        names = [g.name for g in work.gates]
        assert_reports_equal(kernel.reports(names, stats, PO_LOAD),
                             object_reports(work, model, stats, PO_LOAD))

    def test_gate_totals_match_reports(self, wide):
        circuit, input_stats = wide
        work = circuit.copy()
        model = GatePowerModel()
        from repro.stochastic.density import local_stats

        stats = local_stats(work, input_stats)
        kernel = CompiledPowerKernel(get_compiled(work), model)
        names = [g.name for g in work.gates]
        reports = kernel.reports(names, stats, PO_LOAD)
        totals = kernel.gate_totals(names, stats, PO_LOAD)
        assert totals.shape == (len(names),)
        for name, total in zip(names, totals):
            assert float(total) == reports[name].total

    @settings(max_examples=15, deadline=None)
    @given(st.lists(edit_specs(), min_size=1, max_size=6))
    def test_reports_track_random_edits(self, wide, specs):
        circuit_master, stats_master = wide
        circuit = circuit_master.copy()
        input_stats = dict(stats_master)
        model = GatePowerModel()
        kernel = CompiledPowerKernel(get_compiled(circuit), model)
        from repro.stochastic.density import local_stats

        names = [g.name for g in circuit.gates]
        for spec in specs:
            apply_spec(circuit, input_stats, spec)
            stats = local_stats(circuit, input_stats)
            assert_reports_equal(
                kernel.reports(names, stats, PO_LOAD),
                object_reports(circuit, model, stats, PO_LOAD))


# ----------------------------------------------------------------------
# The StatsCache power refresh it backs
# ----------------------------------------------------------------------
class TestCacheIntegration:
    @pytest.mark.parametrize("formula", FORMULAS)
    def test_cache_power_bit_identical(self, wide, formula):
        circuit, stats = wide
        ref_circuit, flat_circuit = circuit.copy(), circuit.copy()
        model = GatePowerModel(formula=formula)
        ref = StatsCache(ref_circuit, stats, model=model, compiled=False)
        flat = StatsCache(flat_circuit, stats, model=model, compiled=True)
        try:
            assert flat._compiled_power and not ref._compiled_power
            assert flat.total_power() == ref.total_power()
            report = flat.power()
            assert_reports_equal(report.by_gate, ref.power().by_gate)
        finally:
            flat.close()
            ref.close()

    @settings(max_examples=10, deadline=None)
    @given(st.lists(edit_specs(), min_size=1, max_size=6))
    def test_cache_power_tracks_random_edits(self, wide, specs):
        circuit_master, stats_master = wide
        ref_circuit = circuit_master.copy()
        flat_circuit = circuit_master.copy()
        ref_stats, flat_stats = dict(stats_master), dict(stats_master)
        ref = StatsCache(ref_circuit, ref_stats, compiled=False)
        flat = StatsCache(flat_circuit, flat_stats, compiled=True)
        try:
            for spec in specs:
                apply_spec(ref_circuit, ref_stats, spec)
                apply_spec(flat_circuit, flat_stats, spec)
                if spec[0] == "input-stats":
                    net = ref_circuit.inputs[spec[1] % len(ref_circuit.inputs)]
                    ref.set_input_stats(net, ref_stats[net])
                    flat.set_input_stats(net, flat_stats[net])
                assert flat.total_power() == ref.total_power()
                assert_reports_equal(flat.power().by_gate,
                                     ref.power().by_gate)
        finally:
            flat.close()
            ref.close()

    def test_kernel_is_memoised_per_compiled_circuit(self, wide):
        circuit, stats = wide
        work = circuit.copy()
        with StatsCache(work, stats, compiled=True) as cache:
            cache.total_power()
            kernel = cache.power_kernel()
            assert cache.power_kernel() is kernel
            assert kernel.cc is get_compiled(work)
