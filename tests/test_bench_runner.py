"""Golden regression tests for the parallel benchmark runner."""

import json

import pytest

from repro.bench.runner import (
    SCHEMA_VERSION,
    dumps_artifact,
    load_artifact,
    run_suite,
    strip_timing,
    write_artifact,
)
from repro.bench.suite import benchmark_suite

GOLDEN_CASES = ("maj3", "fa1", "c17")


@pytest.fixture(scope="module")
def golden_artifact():
    return run_suite(cases=GOLDEN_CASES, scenarios=("A", "B"), jobs=1, seed=0)


class TestGoldenStability:
    def test_byte_stable_across_runs(self, golden_artifact):
        again = run_suite(cases=GOLDEN_CASES, scenarios=("A", "B"), jobs=1, seed=0)
        assert dumps_artifact(strip_timing(golden_artifact)) == dumps_artifact(
            strip_timing(again)
        )

    def test_byte_stable_across_jobs(self, golden_artifact):
        parallel = run_suite(cases=GOLDEN_CASES, scenarios=("A", "B"), jobs=4, seed=0)
        assert dumps_artifact(strip_timing(golden_artifact)) == dumps_artifact(
            strip_timing(parallel)
        )

    def test_seed_changes_results(self, golden_artifact):
        other = run_suite(cases=GOLDEN_CASES, scenarios=("A",), jobs=1, seed=1)
        base_rows = {
            (r["circuit"], r["scenario"]): r
            for r in golden_artifact["results"]
        }
        changed = [
            r for r in other["results"]
            if r["sim_reduction"]
            != base_rows[(r["circuit"], r["scenario"])]["sim_reduction"]
        ]
        assert changed, "a different seed must change the measured stimulus"


class TestArtifactShape:
    def test_row_per_case_and_scenario(self, golden_artifact):
        rows = golden_artifact["results"]
        assert [(r["circuit"], r["scenario"]) for r in rows] == [
            (name, sc) for name in GOLDEN_CASES for sc in ("A", "B")
        ]
        for row in rows:
            assert row["gates"] > 0
            assert row["elapsed_s"] >= 0.0
            assert -1.0 <= row["model_reduction"] <= 1.0
            assert -1.0 <= row["sim_reduction"] <= 1.0

    def test_strip_timing_removes_only_volatile_fields(self, golden_artifact):
        stripped = strip_timing(golden_artifact)
        assert "elapsed_s" not in stripped
        assert "jobs" not in stripped
        assert all("elapsed_s" not in row for row in stripped["results"])
        assert stripped["schema"] == SCHEMA_VERSION
        assert stripped["suite"] == golden_artifact["suite"]

    def test_roundtrip_through_file(self, golden_artifact, tmp_path):
        path = tmp_path / "artifact.json"
        write_artifact(golden_artifact, str(path))
        loaded = load_artifact(str(path))
        assert loaded == json.loads(dumps_artifact(golden_artifact))

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError, match="schema"):
            load_artifact(str(path))


class TestRunSuiteArguments:
    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError):
            run_suite(cases=["nonexistent"], scenarios=("A",))

    def test_bad_scenario_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            run_suite(cases=["maj3"], scenarios=("C",))

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_suite(cases=["maj3"], scenarios=("A",), jobs=0)

    def test_subset_selection_matches_suite(self, tmp_path):
        artifact = run_suite(cases=["maj3"], scenarios=("A",), jobs=1,
                             out_path=str(tmp_path / "one.json"))
        assert artifact["suite"]["subset"] == "custom"
        assert (tmp_path / "one.json").exists()
        names = [case.name for case in benchmark_suite("quick")]
        assert "c17" in names  # the golden subset stays inside the suite


@pytest.mark.slow
def test_full_suite_parallel_sweep(tmp_path):
    """The full 30-circuit sweep runs in parallel end to end."""
    artifact = run_suite(subset="full", scenarios=("A", "B"), jobs=4, seed=0,
                         out_path=str(tmp_path / "full.json"))
    assert len(artifact["results"]) == 2 * len(benchmark_suite("full"))
    assert len(artifact["suite"]["cases"]) == 30
