"""Unit tests for the bit-parallel sampling engine (repro.sim.bitsim)."""

import numpy as np
import pytest

from repro.bench.suite import get_case
from repro.boolean.truthtable import TruthTable
from repro.circuit.netlist import Circuit
from repro.gates.library import default_library
from repro.sim.bitsim import (
    BitParallelSimulator,
    _compile_word_function,
    pack_vectors,
    sampled_stats,
    stimulus_step_vectors,
)
from repro.sim.logicsim import exhaustive_vectors, random_vectors
from repro.sim.stimulus import ScenarioA, ScenarioB
from repro.stochastic.signal import SignalStats
from repro.synth.mapper import map_circuit

LIB = default_library()


def small_circuit():
    c = Circuit("small", LIB)
    for n in ("a", "b", "c"):
        c.add_input(n)
    c.add_output("y")
    c.add_gate("g0", "aoi21", {"a": "a", "b": "b", "c": "c"}, "n0")
    c.add_gate("g1", "nand2", {"a": "n0", "b": "c"}, "y")
    return c


class TestWordFunctions:
    def test_every_library_cell_matches_truth_table(self):
        """The compiled word evaluator agrees with the scalar table."""
        for name in LIB.names:
            tt = LIB[name].compile_config().output_tt
            fn = _compile_word_function(tt.nvars, tt.bits)
            lanes = 1 << tt.nvars
            mask = (1 << lanes) - 1
            # Lane k carries minterm k, so the output word is tt.bits.
            words = [TruthTable.variable(tt.vars, v).bits for v in tt.vars]
            assert fn(words, mask) == tt.bits, name

    def test_constant_functions(self):
        mask = 0b1111
        assert _compile_word_function(0, 0)([], mask) == 0
        assert _compile_word_function(0, 1)([], mask) == mask


class TestSweep:
    def test_matches_scalar_evaluate_exhaustively(self):
        circuit = small_circuit()
        vectors = exhaustive_vectors(list(circuit.inputs))
        sim = BitParallelSimulator(circuit, lanes=len(vectors))
        words = sim.sweep(pack_vectors(vectors, circuit.inputs))
        for k, vector in enumerate(vectors):
            reference = circuit.evaluate(vector)
            for net in circuit.nets():
                assert bool((words[net] >> k) & 1) == bool(reference[net])

    def test_matches_scalar_evaluate_on_mapped_c17(self):
        circuit = map_circuit(get_case("c17").network())
        rng = np.random.default_rng(7)
        vectors = random_vectors(list(circuit.inputs), 128, rng)
        sim = BitParallelSimulator(circuit, lanes=128)
        words = sim.sweep(pack_vectors(vectors, circuit.inputs))
        for k, vector in enumerate(vectors):
            reference = circuit.evaluate(vector)
            for net in circuit.nets():
                assert bool((words[net] >> k) & 1) == bool(reference[net])

    def test_rejects_zero_lanes(self):
        with pytest.raises(ValueError):
            BitParallelSimulator(small_circuit(), lanes=0)

    def test_rejects_words_wider_than_lanes(self):
        """Packed vectors beyond the lane count would otherwise be
        silently dropped, biasing the statistics."""
        circuit = small_circuit()
        sim = BitParallelSimulator(circuit, lanes=4)
        with pytest.raises(ValueError, match="lanes"):
            sim.sweep({"a": 0b10000, "b": 0, "c": 0})


class TestRun:
    def test_deterministic_for_equal_seeds(self):
        circuit = small_circuit()
        stats = {n: SignalStats(0.5, 1.0e6) for n in circuit.inputs}
        sim = BitParallelSimulator(circuit, lanes=256)
        a = sim.run(stats, steps=16, seed=42)
        b = sim.run(stats, steps=16, seed=42)
        assert a.ones == b.ones and a.toggles == b.toggles
        c = sim.run(stats, steps=16, seed=43)
        assert c.ones != a.ones or c.toggles != a.toggles

    def test_unseeded_run_warns_and_defaults_deterministically(self):
        circuit = small_circuit()
        stats = {n: SignalStats(0.5, 1.0e6) for n in circuit.inputs}
        sim = BitParallelSimulator(circuit, lanes=64)
        with pytest.warns(UserWarning, match="seed"):
            a = sim.run(stats, steps=8, seed=None)
        with pytest.warns(UserWarning, match="seed"):
            b = sim.run(stats, steps=8, seed=None)
        assert a.ones == b.ones and a.toggles == b.toggles
        assert a.ones == sim.run(stats, steps=8, seed=0).ones

    def test_input_density_measurement_is_calibrated(self):
        """Measured input (P, D) converges to the requested statistics."""
        circuit = small_circuit()
        requested = {
            "a": SignalStats(0.3, 2.0e5),
            "b": SignalStats(0.7, 1.0e6),
            "c": SignalStats(0.5, 5.0e5),
        }
        report = BitParallelSimulator(circuit, lanes=4096).run(
            requested, steps=64, seed=9
        )
        for net, stats in requested.items():
            assert report.probability(net) == pytest.approx(stats.probability, abs=0.03)
            assert report.density(net) == pytest.approx(stats.density, rel=0.08)

    def test_inverter_complements_probability(self):
        c = Circuit("inv", LIB)
        c.add_input("a")
        c.add_output("y")
        c.add_gate("g0", "inv", {"a": "a"}, "y")
        report = BitParallelSimulator(c, lanes=4096).run(
            {"a": SignalStats(0.2, 1.0e6)}, steps=32, seed=5
        )
        assert report.probability("y") == pytest.approx(1.0 - report.probability("a"))
        # Inverter output toggles exactly when its input toggles.
        assert report.toggles["y"] == report.toggles["a"]

    def test_constant_inputs_never_toggle(self):
        circuit = small_circuit()
        stats = {n: SignalStats.constant(True) for n in circuit.inputs}
        report = BitParallelSimulator(circuit, lanes=128).run(stats, steps=16, seed=0)
        assert all(t == 0 for t in report.toggles.values())
        assert report.probability("a") == 1.0

    def test_rejects_coarse_dt(self):
        circuit = small_circuit()
        stats = {n: SignalStats(0.5, 1.0e6) for n in circuit.inputs}
        sim = BitParallelSimulator(circuit, lanes=16)
        with pytest.raises(ValueError, match="too coarse"):
            sim.run(stats, steps=4, dt=1.0)


class TestStimulusReplay:
    def test_replay_counts_match_zero_delay_switchsim(self):
        from repro.sim.switchsim import SwitchLevelSimulator

        circuit = map_circuit(get_case("c17").network())
        stimulus = ScenarioB(seed=3).generate(circuit.inputs, cycles=120)
        settled = SwitchLevelSimulator(circuit, delay_mode="zero").run(stimulus)
        report = BitParallelSimulator(circuit, lanes=1).run_stimulus(stimulus)
        assert report.toggles == settled.net_transitions

    def test_replay_matches_scenario_a_waveforms(self):
        """Exponential (unequally spaced) dwell times: toggle counts AND
        time-weighted probabilities both match the settled simulator."""
        from repro.sim.switchsim import SwitchLevelSimulator

        circuit = map_circuit(get_case("maj3").network())
        stimulus = ScenarioA(seed=11).generate(circuit.inputs, duration=2.0e-5)
        settled = SwitchLevelSimulator(circuit, delay_mode="zero").run(stimulus)
        report = BitParallelSimulator(circuit, lanes=1).run_stimulus(stimulus)
        assert report.toggles == settled.net_transitions
        for net in circuit.nets():
            assert report.probability(net) == pytest.approx(
                settled.net_high_time[net] / stimulus.duration, rel=1e-9, abs=1e-9
            )

    def test_run_vectors_durations_are_time_weighted(self):
        """Explicit step durations weight P by time, independent of dt."""
        c = Circuit("inv", LIB)
        c.add_input("a")
        c.add_output("y")
        c.add_gate("g0", "inv", {"a": "a"}, "y")
        sim = BitParallelSimulator(c, lanes=1)
        report = sim.run_vectors([{"a": 1}, {"a": 0}], durations=[2.0, 8.0])
        assert report.probability("a") == pytest.approx(0.2)
        assert report.probability("y") == pytest.approx(0.8)
        assert report.density("a") == pytest.approx(1.0 / 10.0)
        always_high = sim.run_vectors([{"a": 1}, {"a": 1}], durations=[2.0, 8.0])
        assert always_high.probability("a") == 1.0
        with pytest.raises(ValueError, match="duration"):
            sim.run_vectors([{"a": 1}], durations=[2.0, 8.0])
        with pytest.raises(ValueError, match="non-negative"):
            sim.run_vectors([{"a": 1}], durations=[-1.0])

    def test_step_vectors_group_simultaneous_events(self):
        stimulus = ScenarioB(seed=1).generate(("a", "b"), cycles=50)
        steps, durations = stimulus_step_vectors(stimulus, ("a", "b"))
        times = set()
        for net in ("a", "b"):
            times.update(t for t in stimulus.waveforms[net][1]
                         if t < stimulus.duration)
        assert len(steps) == len(times) + 1
        assert len(durations) == len(steps)
        assert sum(durations) == pytest.approx(stimulus.duration)

    def test_replay_requires_single_lane(self):
        circuit = small_circuit()
        stimulus = ScenarioB(seed=0).generate(circuit.inputs, cycles=10)
        with pytest.raises(ValueError, match="single-lane"):
            BitParallelSimulator(circuit, lanes=2).run_stimulus(stimulus)


class TestSampledStats:
    def test_full_net_map_with_valid_stats(self):
        circuit = map_circuit(get_case("fa1").network())
        stats_in = ScenarioA(seed=2).input_stats(circuit.inputs)
        result = sampled_stats(circuit, stats_in, lanes=512, steps=16, seed=4)
        assert set(result) == set(circuit.nets())
        for stats in result.values():
            assert 0.0 <= stats.probability <= 1.0
            assert stats.density >= 0.0

    def test_propagate_stats_dispatch(self):
        from repro.stochastic.density import propagate_stats

        circuit = map_circuit(get_case("maj3").network())
        stats_in = {n: SignalStats(0.5, 1.0e6) for n in circuit.inputs}
        sampled = propagate_stats(circuit, stats_in, method="sampled",
                                  lanes=2048, steps=32, seed=8)
        local = propagate_stats(circuit, stats_in, method="local")
        for net in circuit.nets():
            assert sampled[net].probability == pytest.approx(
                local[net].probability, abs=0.05
            )
        with pytest.raises(TypeError):
            propagate_stats(circuit, stats_in, method="local", lanes=64)

    def test_optimizer_accepts_sampled_source(self):
        from repro.core.optimizer import optimize_circuit

        circuit = map_circuit(get_case("maj3").network())
        stats_in = ScenarioA(seed=6).input_stats(circuit.inputs)
        modelled = optimize_circuit(circuit, stats_in, objective="best")
        sampled = optimize_circuit(
            circuit, stats_in, objective="best", stats="sampled",
            stats_kwargs={"lanes": 4096, "steps": 64, "seed": 1},
        )
        assert sampled.power_after == pytest.approx(modelled.power_after, rel=0.25)
        with pytest.raises(ValueError, match="stats source"):
            optimize_circuit(circuit, stats_in, stats="nope")
        with pytest.raises(TypeError, match="stats source"):
            # Forgot stats="sampled": the kwargs must not be dropped silently.
            optimize_circuit(circuit, stats_in, stats_kwargs={"seed": 1})
