"""Property tests: the incremental stack under search workloads.

The search engine exercises the incremental substrate far harder than
scripted ECO replays — hundreds of trial/rollback cycles, batched
same-gate overwrites, committed winners — so these properties pin the
load-bearing invariants under exactly that traffic:

* any accepted-move sequence (any strategy, seed, budget, move
  vocabulary) leaves the live :class:`StatsCache` **bit-identical** to
  a from-scratch recompute of the edited circuit, for both backends;
* the connectivity structures the engine trusts for its whole lifetime
  (:class:`FanoutIndex`, levelisation, topological order) still agree
  with the ground-truth netlist after long edit sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.suite import get_case
from repro.circuit.topology import FanoutIndex, levelize, topological_gates
from repro.incremental import SampledBackend, StatsCache, search_circuit
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import propagate_stats
from repro.synth.mapper import map_circuit


@pytest.fixture(scope="module")
def master():
    circuit = map_circuit(get_case("rca4").network())
    stats = ScenarioA(seed=7).input_stats(circuit.inputs)
    return circuit, stats


def search_params():
    """One abstract search workload: strategy, seed, budget, vocabulary."""
    return st.tuples(
        st.sampled_from(["greedy", "anneal"]),
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=1, max_value=12),  # max_moves
        st.booleans(),  # retemplate
    )


def assert_structures_consistent(cache, circuit, reference_circuit):
    """FanoutIndex / levelize / topo-order ground truth after edits."""
    index = cache.index
    for net in circuit.nets():
        assert {(g.name, pin) for g, pin in index.sinks(net)} == {
            (g.name, pin) for g, pin in circuit.fanout(net)
        }
    fresh = FanoutIndex(circuit)
    for gate in circuit.gates:
        assert index.cone_from_gates([gate.name]) == fresh.cone_from_gates(
            [gate.name]
        )
    # the supported edits never change connectivity, so levels and the
    # topological order match the pristine reference circuit
    assert levelize(circuit) == levelize(reference_circuit)
    assert [g.name for g in topological_gates(circuit)] == [
        g.name for g in topological_gates(reference_circuit)
    ]


class TestAnalyticSearchEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(search_params())
    def test_search_leaves_cache_bitidentical(self, master, params):
        strategy, seed, max_moves, retemplate = params
        circuit_master, stats = master
        work = circuit_master.copy()
        with StatsCache(work, stats) as cache:
            result = search_circuit(
                cache=cache, strategy=strategy, seed=seed,
                max_moves=max_moves, retemplate=retemplate,
                anneal_trials=60,
            )
            assert cache.stats() == propagate_stats(work, stats, "local")
            assert result.net_stats == cache.stats()
            assert_structures_consistent(cache, work, circuit_master)


class TestSampledSearchEquivalence:
    LANES, STEPS, SEED = 32, 8, 9

    @settings(max_examples=6, deadline=None)
    @given(search_params())
    def test_search_leaves_cache_bitidentical(self, master, params):
        strategy, seed, max_moves, retemplate = params
        circuit_master, stats = master
        work = circuit_master.copy()
        dwells = [
            d for s in stats.values()
            for d in (s.mean_high_dwell, s.mean_low_dwell)
        ]
        dt = 0.25 * min(dwells)
        with StatsCache(work, stats, backend="sampled", lanes=self.LANES,
                        steps=self.STEPS, dt=dt, seed=self.SEED) as cache:
            search_circuit(
                cache=cache, strategy=strategy, seed=seed,
                max_moves=max_moves, retemplate=retemplate,
                anneal_trials=30,
            )
            fresh = SampledBackend(lanes=self.LANES, steps=self.STEPS,
                                   dt=dt, seed=self.SEED).full(work, stats)
            assert cache.stats() == fresh
            assert_structures_consistent(cache, work, circuit_master)
