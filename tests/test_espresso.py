"""Tests for the espresso-style two-level minimiser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.blif import parse_blif
from repro.sim.logicsim import check_equivalence
from repro.synth.espresso import minimize_cover, minimize_network
from repro.synth.sop import cover_to_expr


def tt_of(patterns, n):
    variables = tuple(f"v{i}" for i in range(n))
    return cover_to_expr(patterns, variables).to_truthtable(variables)


class TestMinimizeCover:
    def test_redundant_cube_removed(self):
        # The consensus cube '1-1' is redundant for 11- + -01... build a
        # clearly redundant case: 11-, 1-1, 111 (last one contained).
        result = minimize_cover(["11-", "1-1", "111"], 3)
        assert tt_of(result, 3) == tt_of(["11-", "1-1"], 3)
        assert len(result) == 2

    def test_expansion_to_primes(self):
        # f = a (as two halves '10'+'11' over vars a,b): expands to '1-'.
        result = minimize_cover(["10", "11"], 2)
        assert result == ("1-",)

    def test_classic_example(self):
        # f = a'b' + a'b + ab = a' + b: two primes.
        result = minimize_cover(["00", "01", "11"], 2)
        assert len(result) == 2
        assert tt_of(result, 2) == tt_of(["00", "01", "11"], 2)

    def test_constant_one_collapses(self):
        result = minimize_cover(["0-", "1-"], 2)
        assert result == ("--",)

    def test_empty_cover(self):
        assert minimize_cover([], 3) == ()

    def test_large_support_passthrough(self):
        wide = "1" * 14
        result = minimize_cover([wide], 14)
        assert result == (wide,)

    @given(st.sets(
        st.text(alphabet="01-", min_size=4, max_size=4), min_size=1, max_size=8
    ))
    @settings(max_examples=60, deadline=None)
    def test_function_preserved_and_no_larger(self, patterns):
        patterns = sorted(patterns)
        result = minimize_cover(patterns, 4)
        assert tt_of(result, 4) == tt_of(patterns, 4)
        assert len(result) <= len(patterns)

    @given(st.sets(
        st.text(alphabet="01-", min_size=3, max_size=3), min_size=1, max_size=6
    ))
    @settings(max_examples=40, deadline=None)
    def test_result_is_irredundant(self, patterns):
        result = minimize_cover(sorted(patterns), 3)
        full = tt_of(result, 3)
        for i in range(len(result)):
            without = [p for j, p in enumerate(result) if j != i]
            assert tt_of(without, 3) != full or not without


class TestMinimizeNetwork:
    def test_behaviour_preserved(self):
        text = """
.model redundant
.inputs a b c
.outputs y
.names a b c y
11- 1
1-1 1
111 1
-11 1
.end
"""
        network = parse_blif(text)
        minimized = minimize_network(network)
        assert check_equivalence(network, minimized)
        assert len(minimized.node("y").cubes) < len(network.node("y").cubes)

    def test_offset_phase_preserved(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n10 0\n11 0\n.end\n"
        network = parse_blif(text)
        minimized = minimize_network(network)
        assert check_equivalence(network, minimized)
        assert minimized.node("y").phase is False
