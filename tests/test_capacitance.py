"""Tests for the structural capacitance model."""

import pytest

from repro.gates.capacitance import (
    TechParams,
    internal_node_capacitance,
    node_capacitance,
    output_intrinsic_capacitance,
    pin_capacitance,
)
from repro.gates.library import default_library
from repro.gates.network import OUT

LIB = default_library()
TECH = TechParams()


class TestTechParams:
    def test_defaults_positive(self):
        t = TechParams()
        assert t.vdd > 0 and t.c_diff > 0 and t.r_n > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TechParams(vdd=0.0)
        with pytest.raises(ValueError):
            TechParams(c_diff=-1e-15)

    def test_switch_energy_factor(self):
        t = TechParams(vdd=2.0)
        assert t.switch_energy_factor == pytest.approx(2.0)


class TestPinCapacitance:
    def test_ordinary_pin_two_gates(self):
        gate = LIB["nand2"].compile_config()
        # One N and one P transistor per pin.
        assert pin_capacitance(gate, "a", TECH) == pytest.approx(2 * TECH.c_gate)

    def test_unknown_pin(self):
        gate = LIB["inv"].compile_config()
        with pytest.raises(KeyError):
            pin_capacitance(gate, "z", TECH)


class TestNodeCapacitance:
    def test_internal_nodes_scale_with_terminals(self):
        gate = LIB["nand3"].compile_config()
        for node in gate.internal_nodes:
            expected = gate.terminal_counts[node] * TECH.c_diff
            assert internal_node_capacitance(gate, node, TECH) == pytest.approx(expected)

    def test_output_includes_wire_and_load(self):
        gate = LIB["nand2"].compile_config()
        base = output_intrinsic_capacitance(gate, TECH)
        assert base == pytest.approx(
            gate.terminal_counts[OUT] * TECH.c_diff + TECH.c_wire
        )
        assert node_capacitance(gate, OUT, TECH, load=7e-15) == pytest.approx(
            base + 7e-15
        )

    def test_internal_node_ignores_load(self):
        gate = LIB["nand2"].compile_config()
        node = gate.internal_nodes[0]
        assert node_capacitance(gate, node, TECH, load=1e-12) == pytest.approx(
            internal_node_capacitance(gate, node, TECH)
        )

    def test_output_not_internal(self):
        gate = LIB["nand2"].compile_config()
        with pytest.raises(KeyError):
            internal_node_capacitance(gate, OUT, TECH)

    def test_ordering_can_move_capacitance(self):
        """Orderings of aoi211 redistribute diffusion among PUN junctions."""
        template = LIB["aoi211"]
        distributions = set()
        for config in template.configurations():
            gate = template.compile_config(config)
            caps = tuple(sorted(
                gate.terminal_counts[n] for n in gate.internal_nodes
            ))
            distributions.add(caps)
        assert len(distributions) > 1

    def test_total_diffusion_conserved_per_gate(self):
        """Every ordering has the same total transistor terminal count."""
        for name in ("nand3", "oai21", "aoi221"):
            template = LIB[name]
            totals = set()
            for config in template.configurations():
                gate = template.compile_config(config)
                total = sum(gate.terminal_counts[n] for n in gate.nodes)
                totals.add(total)
            # Terminals at vdd/vss vary with ordering, but the node set the
            # model bills is consistent per gate: assert bounded variation.
            assert max(totals) - min(totals) <= 2, name
