"""Structural ECO edits: exact inverses, cache coherence, search artifacts.

Covers the structural edit algebra (``AddGate``/``RemoveGate``/
``RewireNet``) end to end: inverse round-trips and validation errors at
the netlist layer, the widened JSON vocabulary (unknown-key rejection,
retemplate ``config`` support), WhatIf trial/rollback exactness, a
hypothesis property holding both incremental caches bit-identical to
from-scratch re-analysis under interleaved structural + local edits,
the stale-``CompiledCircuit`` guard, and the structural search move
families (byte-stable artifacts, replayable scripts, traced-vs-untraced
parity).
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import dumps_artifact, strip_timing
from repro.bench.suite import get_case
from repro.circuit.netlist import (
    AddGate,
    Circuit,
    CircuitError,
    RemoveGate,
    RewireNet,
    SetConfig,
    SetTemplate,
)
from repro.gates.library import default_library
from repro.incremental.cache import StatsCache
from repro.incremental.eco import WhatIf, resolve_edit
from repro.incremental.search import Move, search_circuit
from repro.incremental.timing import TimingCache
from repro.obs import trace
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import propagate_stats
from repro.stochastic.signal import SignalStats
from repro.synth.mapper import map_circuit
from repro.timing.sta import analyze_timing


def fanout_circuit() -> Circuit:
    """A heavy-fanout net plus a dead inverter pair (sweep fodder)."""
    c = Circuit("fanout", default_library())
    for net in "abcd":
        c.add_input(net)
    c.add_gate("src", "nand2", {"a": "a", "b": "b"}, "x")
    for i in range(6):
        c.add_gate(f"s{i}", "nand2", {"a": "x", "b": "cd"[i % 2]}, f"y{i}")
    prev = "y0"
    for i in range(1, 6):
        c.add_gate(f"r{i}", "nand2", {"a": prev, "b": f"y{i}"}, f"z{i}")
        prev = f"z{i}"
    c.add_gate("d1", "inv", {"a": "c"}, "dead1")
    c.add_gate("d2", "inv", {"a": "dead1"}, "dead2")
    c.add_output(prev)
    c.validate()
    return c


FANOUT_STATS = {n: SignalStats(0.5, 2.0e8) for n in "abcd"}


def netlist_snapshot(circuit: Circuit):
    """Everything a rollback must restore, creation order included."""
    return (
        tuple(circuit.inputs),
        tuple(circuit.outputs),
        tuple(
            (g.name, g.template.name,
             tuple(sorted(g.pin_nets.items())), g.output,
             None if g.config is None else g.config.key())
            for g in circuit.gates
        ),
    )


def fanout_snapshot(circuit: Circuit):
    index = circuit.fanout_index()
    nets = list(circuit.inputs) + [g.output for g in circuit.gates]
    return {net: tuple((g.name, pin) for g, pin in index.sinks(net))
            for net in nets}


# ----------------------------------------------------------------------
# Edit algebra: inverses and validation
# ----------------------------------------------------------------------
class TestStructuralEdits:
    def test_add_gate_inverse_roundtrip(self):
        c = fanout_circuit()
        before = netlist_snapshot(c)
        inverse = c.apply_edit(
            AddGate("extra", "inv", (("a", "x"),), "extra_n"))
        assert inverse == RemoveGate("extra")
        assert "extra" in c
        c.apply_edit(inverse)
        assert netlist_snapshot(c) == before

    def test_remove_gate_inverse_restores_creation_order(self):
        c = fanout_circuit()
        before = netlist_snapshot(c)
        order_before = [g.name for g in c.gates]
        assert order_before.index("d1") < len(order_before) - 1
        inverse = c.apply_edit(RemoveGate("d2"))
        assert isinstance(inverse, AddGate)
        assert inverse.index == order_before.index("d2")
        redo = c.apply_edit(inverse)
        assert redo == RemoveGate("d2")
        assert [g.name for g in c.gates] == order_before
        assert netlist_snapshot(c) == before
        c.validate()

    def test_remove_refuses_driven_sinks_and_po(self):
        c = fanout_circuit()
        with pytest.raises(CircuitError):
            c.apply_edit(RemoveGate("src"))  # x has sinks
        with pytest.raises(CircuitError):
            c.apply_edit(RemoveGate("r5"))  # z5 is a primary output

    def test_add_refuses_undriven_fanin(self):
        c = fanout_circuit()
        with pytest.raises(CircuitError, match="no driver"):
            c.apply_edit(AddGate("g", "inv", (("a", "ghost"),), "g_n"))

    def test_rewire_inverse_roundtrip(self):
        c = fanout_circuit()
        before = netlist_snapshot(c)
        fanout_before = fanout_snapshot(c)
        inverse = c.apply_edit(RewireNet("s0", "a", "c"))
        assert inverse == RewireNet("s0", "a", "x")
        assert c.gate("s0").pin_nets["a"] == "c"
        c.apply_edit(inverse)
        assert netlist_snapshot(c) == before
        assert fanout_snapshot(c) == fanout_before

    def test_rewire_refuses_cycles_and_bad_args(self):
        c = fanout_circuit()
        # y0 is downstream of src: binding src's pin to it is a cycle
        with pytest.raises(CircuitError):
            c.apply_edit(RewireNet("src", "a", "y0"))
        with pytest.raises(CircuitError):
            c.apply_edit(RewireNet("s0", "nope", "c"))
        with pytest.raises(CircuitError):
            c.apply_edit(RewireNet("s0", "a", "ghost"))

    def test_unknown_template_reports_available_cells(self):
        c = fanout_circuit()
        with pytest.raises(CircuitError, match="available.*inv"):
            c.add_gate("g", "bogus", {"a": "a"}, "g_n")
        with pytest.raises(CircuitError, match="available.*inv"):
            c.apply_edit(SetTemplate("src", "bogus"))
        with pytest.raises(CircuitError, match="available.*inv"):
            default_library()["bogus"]

    def test_validate_deep_chain_iteratively(self):
        # The recursive DFS exhausted the C stack on chains like this;
        # the iterative rewrite must not (no recursion-limit games).
        c = Circuit("deep", default_library())
        c.add_input("n0")
        for i in range(30_000):
            c.add_gate(f"g{i}", "inv", {"a": f"n{i}"}, f"n{i + 1}")
        c.add_output("n30000")
        c.validate()
        assert len(list(c.topo_gates())) == 30_000


# ----------------------------------------------------------------------
# JSON vocabulary
# ----------------------------------------------------------------------
class TestEditVocabulary:
    def test_retemplate_honours_config(self):
        c = fanout_circuit()
        template = c.library["nor2"]
        configs = template.configurations()
        edit = resolve_edit(
            c, {"op": "retemplate", "gate": "src", "template": "nor2",
                "config": 1})
        assert edit == SetTemplate("src", "nor2", configs[1])
        # config stays optional
        assert resolve_edit(
            c, {"op": "retemplate", "gate": "src", "template": "nor2"}
        ) == SetTemplate("src", "nor2")

    def test_unknown_keys_rejected(self):
        c = fanout_circuit()
        for entry in (
            {"op": "reorder", "gate": "src", "confg": 0},
            {"op": "retemplate", "gate": "src", "template": "nor2",
             "pins": {}},
            {"op": "remove-gate", "gate": "d2", "output": "dead2"},
        ):
            with pytest.raises(ValueError, match="unknown keys"):
                resolve_edit(c, entry)

    def test_unknown_op_lists_vocabulary(self):
        with pytest.raises(ValueError, match="add-gate.*rewire|rewire.*add-gate"):
            resolve_edit(fanout_circuit(), {"op": "transmogrify"})

    def test_add_gate_pin_mismatch_rejected(self):
        c = fanout_circuit()
        with pytest.raises(ValueError, match="do not match"):
            resolve_edit(c, {"op": "add-gate", "gate": "g",
                             "template": "nand2", "pins": {"a": "a"},
                             "output": "g_n"})

    def test_structural_entries_round_trip(self):
        c = fanout_circuit()
        edits = (
            AddGate("g", "nand2", (("a", "a"), ("b", "x")), "g_n"),
            RemoveGate("d2"),
            RewireNet("s0", "a", "c"),
        )
        move = Move("s0", "buffer", edits, label="t")
        entries = move.script_entry(c)
        assert isinstance(entries, list) and len(entries) == 3
        json.dumps(entries)
        assert tuple(resolve_edit(c, e) for e in entries) == edits

    def test_unenumerated_config_reports_gate_and_template(self):
        c = fanout_circuit()
        foreign = c.library["nor2"].configurations()[0]
        move = Move("src", "reorder", SetConfig("src", foreign))
        with pytest.raises(ValueError,
                           match="src.*nand2.*cannot be scripted"):
            move.script_entry(c)


# ----------------------------------------------------------------------
# WhatIf trial/rollback
# ----------------------------------------------------------------------
class TestWhatIfStructural:
    @pytest.mark.parametrize("compiled", [False, True])
    def test_rollback_restores_netlist_exactly(self, compiled):
        c = fanout_circuit()
        cache = StatsCache(c, FANOUT_STATS, compiled=compiled)
        timing = TimingCache(c, tech=cache.model.tech, po_load=cache.po_load,
                             index=cache.index, compiled=compiled)
        snapshot = netlist_snapshot(c)
        fanout = fanout_snapshot(c)
        stats_before = dict(cache.stats())
        power_before = cache.total_power()
        delay_before = timing.delay()
        with WhatIf(cache) as trial:
            trial.apply(AddGate("b1", "inv", (("a", "x"),), "b1_n"))
            trial.apply(AddGate("b2", "inv", (("a", "b1_n"),), "b2_n"))
            trial.apply(RewireNet("s0", "a", "b2_n"))
            trial.apply(RewireNet("s1", "a", "b2_n"))
            trial.apply(RemoveGate("d2"))
            assert trial.power() != power_before
        assert netlist_snapshot(c) == snapshot
        assert fanout_snapshot(c) == fanout
        assert dict(cache.stats()) == stats_before
        assert cache.total_power() == power_before
        assert timing.delay() == delay_before
        timing.close()
        cache.close()

    def test_nested_commit_promotes_structural_undo(self):
        c = fanout_circuit()
        cache = StatsCache(c, FANOUT_STATS)
        snapshot = netlist_snapshot(c)
        power_before = cache.total_power()
        with WhatIf(cache) as outer:
            outer.apply(SetConfig("src", None))
            with WhatIf(cache) as inner:
                inner.apply(RemoveGate("d2"))
                inner.commit()
            assert "d2" not in c
        # outer rolled back: the committed inner edit must unwind too
        assert netlist_snapshot(c) == snapshot
        assert cache.total_power() == power_before
        cache.close()

    def test_sampled_backend_refuses_before_mutation(self):
        c = fanout_circuit()
        cache = StatsCache(c, FANOUT_STATS, backend="sampled",
                           lanes=16, steps=4, seed=1)
        with WhatIf(cache) as trial:
            with pytest.raises(CircuitError, match="sampled.*structural"):
                trial.apply(AddGate("g", "inv", (("a", "a"),), "g_n"))
        assert "g" not in c  # refused before touching the netlist
        cache.close()


# ----------------------------------------------------------------------
# Property: interleaved edits keep both caches bit-identical to scratch
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def master():
    circuit = map_circuit(get_case("rca4").network())
    stats = ScenarioA(seed=5).input_stats(circuit.inputs)
    return circuit, stats


def edit_specs():
    return st.tuples(
        st.sampled_from(["reorder", "retemplate", "add", "remove", "rewire"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )


def apply_spec(circuit, spec, counter):
    """Resolve one abstract edit against the live circuit and apply it.

    Structural choices are made safe by construction: added gates feed
    from existing nets, removals pick currently dead gates, rewires
    bind to nets whose drivers sit strictly earlier in topological
    order (so no cycle can form).
    """
    kind, selector, value = spec
    if kind == "reorder":
        gates = [g for g in circuit.gates
                 if g.template.num_configurations() > 1]
        gate = gates[selector % len(gates)]
        configs = gate.template.configurations()
        circuit.apply_edit(SetConfig(gate.name, configs[value % len(configs)]))
    elif kind == "retemplate":
        groups = {}
        for t in circuit.library:
            groups.setdefault(t.pins, []).append(t.name)
        gates = [g for g in circuit.gates
                 if len(groups.get(g.template.pins, ())) > 1]
        gate = gates[selector % len(gates)]
        others = [n for n in groups[gate.template.pins]
                  if n != gate.template.name]
        circuit.apply_edit(SetTemplate(gate.name, others[value % len(others)]))
    elif kind == "add":
        nets = list(circuit.inputs) + [g.output for g in circuit.gates]
        template = ("inv", "nand2")[value % 2]
        pins = circuit.library[template].pins
        bindings = tuple(
            (pin, nets[(selector + i * 31) % len(nets)])
            for i, pin in enumerate(pins)
        )
        counter[0] += 1
        name = f"hx{counter[0]}"
        circuit.apply_edit(AddGate(name, template, bindings, f"{name}_n"))
    elif kind == "remove":
        index = circuit.fanout_index()
        outputs = frozenset(circuit.outputs)
        dead = [g.name for g in circuit.gates
                if g.output not in outputs and not index.sinks(g.output)]
        if dead:
            circuit.apply_edit(RemoveGate(dead[selector % len(dead)]))
    else:  # rewire
        topo = [g.name for g in circuit.topo_gates()]
        position = {name: i for i, name in enumerate(topo)}
        gate = circuit.gate(topo[selector % len(topo)])
        safe = list(circuit.inputs) + [
            g.output for g in circuit.gates
            if position[g.name] < position[gate.name]
        ]
        pins = gate.template.pins
        pin = pins[value % len(pins)]
        circuit.apply_edit(RewireNet(gate.name, pin,
                                     safe[value % len(safe)]))


class TestInterleavedEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(edit_specs(), min_size=1, max_size=8))
    def test_both_caches_match_scratch_after_every_edit(self, master, specs):
        circuit_master, stats = master
        circuit = circuit_master.copy()
        counter = [0]
        cache = StatsCache(circuit, stats)
        timing = TimingCache(circuit, tech=cache.model.tech,
                             po_load=cache.po_load, index=cache.index)
        try:
            for spec in specs:
                apply_spec(circuit, spec, counter)
                assert cache.stats() == propagate_stats(circuit, stats,
                                                        "local")
                report = analyze_timing(circuit, tech=cache.model.tech,
                                        po_load=cache.po_load)
                assert timing.delay() == report.delay
        finally:
            timing.close()
            cache.close()


# ----------------------------------------------------------------------
# Compiled lowering: stale guard
# ----------------------------------------------------------------------
class TestStaleCompiled:
    def test_structural_edit_invalidates_compiled(self):
        from repro.compiled.circuit import get_compiled

        c = fanout_circuit()
        cc = get_compiled(c)
        assert get_compiled(c) is cc
        c.apply_edit(RemoveGate("d2"))
        assert cc.stale
        with pytest.raises(CircuitError, match="stale"):
            cc._sync_codes()
        fresh = get_compiled(c)
        assert fresh is not cc and not fresh.stale
        fresh._sync_codes()


# ----------------------------------------------------------------------
# Search move families
# ----------------------------------------------------------------------
def _run_structural_search(compiled):
    return search_circuit(
        fanout_circuit(), FANOUT_STATS, strategy="greedy",
        objective="power-delay", delay_weight=0.7,
        structural=["buffer", "dup", "sweep"], structural_nets=2,
        compiled=compiled,
    )


def _portable_artifact(result):
    artifact = strip_timing(result.to_artifact())
    # compiled batch pricing legitimately shrinks re-propagation work;
    # everything else (trace included) must match across routes
    artifact.pop("gates_repropagated")
    return dumps_artifact(artifact)


class TestStructuralSearch:
    @pytest.mark.parametrize("compiled", [False, True])
    def test_script_replays_bit_identically(self, compiled):
        result = _run_structural_search(compiled)
        kinds = {m.kind for m in result.accepted}
        assert "sweep" in kinds  # the dead pair must be swept
        assert kinds & {"buffer", "dup"}  # fanout relief must fire
        work = fanout_circuit()
        cache = StatsCache(work, FANOUT_STATS, compiled=compiled)
        timing = TimingCache(work, tech=cache.model.tech,
                             po_load=cache.po_load, index=cache.index,
                             compiled=compiled)
        for entry in result.eco_script():
            work.apply_edit(resolve_edit(work, entry))
        assert cache.total_power() == result.power_after
        assert timing.delay() == result.delay_after
        assert netlist_snapshot(work) == netlist_snapshot(result.circuit)
        work.validate()
        timing.close()
        cache.close()

    def test_artifact_byte_stable_across_runs_and_routes(self):
        first = _portable_artifact(_run_structural_search(False))
        again = _portable_artifact(_run_structural_search(False))
        compiled = _portable_artifact(_run_structural_search(True))
        assert first == again == compiled

    def test_traced_run_is_byte_identical_and_emits_spans(self):
        baseline = _portable_artifact(_run_structural_search(False))
        sink = io.StringIO()
        trace.enable(sink)
        try:
            traced = _portable_artifact(_run_structural_search(False))
        finally:
            trace.disable()
        assert traced == baseline
        events = sink.getvalue()
        assert "search.structural" in events
        assert "eco.structural" in events

    def test_moves_structural_counter(self):
        from repro.obs.metrics import REGISTRY

        counter = REGISTRY.counter("search.moves_structural")
        before = counter.value
        result = _run_structural_search(False)
        structural = [m for m in result.accepted
                      if m.kind in ("buffer", "dup", "sweep")]
        assert structural
        assert counter.value == before + len(structural)

    def test_sampled_backend_refused_up_front(self):
        with pytest.raises(ValueError, match="analytic"):
            search_circuit(fanout_circuit(), FANOUT_STATS,
                           backend="sampled", structural=["sweep"])

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            search_circuit(fanout_circuit(), FANOUT_STATS,
                           structural=["bogus"])
