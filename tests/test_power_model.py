"""Tests for the extended power-consumption model (paper §3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.expr import parse_expr
from repro.core.power_model import FORMULAS, GatePowerModel
from repro.gates import sptree
from repro.gates.capacitance import TechParams
from repro.gates.library import default_library
from repro.gates.network import OUT, compile_gate
from repro.stochastic.signal import SignalStats

LIB = default_library()
TECH = TechParams()


def stats_for(gate, p=0.5, d=1e5):
    return {pin: SignalStats(p, d) for pin in gate.inputs}


class TestNodeProbability:
    def test_output_probability_equals_function_probability(self):
        gate = LIB["nand2"].compile_config()
        model = GatePowerModel(TECH)
        probs = {"a": 0.3, "b": 0.7}
        expected = gate.output_tt.probability(probs)
        assert model.node_probability(gate, OUT, probs) == pytest.approx(expected)

    def test_internal_node_steady_state(self):
        """nand2 internal node: H = a&!b, G = b; P = P(H)/(P(H)+P(G))."""
        gate = LIB["nand2"].compile_config()
        model = GatePowerModel(TECH)
        node = gate.internal_nodes[0]
        probs = {"a": 0.5, "b": 0.5}
        ph = gate.h[node].probability(probs)
        pg = gate.g[node].probability(probs)
        expected = ph / (ph + pg)
        assert model.node_probability(gate, node, probs) == pytest.approx(expected)

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=30, deadline=None)
    def test_probabilities_in_unit_interval(self, pa, pb, pc):
        gate = LIB["oai21"].compile_config()
        model = GatePowerModel(TECH)
        probs = {"a": pa, "b": pb, "c": pc}
        for node in gate.nodes:
            p = model.node_probability(gate, node, probs)
            assert 0.0 <= p <= 1.0


class TestOutputReducesToNajm:
    """At the output node every formula must collapse to Najm's density."""

    @pytest.mark.parametrize("formula", FORMULAS)
    @pytest.mark.parametrize("gate_name", ["inv", "nand2", "nand3", "oai21", "aoi22"])
    def test_output_transitions_equal_najm_density(self, formula, gate_name):
        gate = LIB[gate_name].compile_config()
        model = GatePowerModel(TECH, formula=formula)
        stats = {
            pin: SignalStats(0.3 + 0.1 * j, 1e4 * (j + 1))
            for j, pin in enumerate(gate.inputs)
        }
        najm = model.output_density(gate, stats)
        assert model.node_transitions(gate, OUT, stats) == pytest.approx(najm)


class TestTransitions:
    def test_inverter_output_density_passthrough(self):
        gate = LIB["inv"].compile_config()
        model = GatePowerModel(TECH)
        stats = {"a": SignalStats(0.5, 123.0)}
        # An inverter propagates every input transition.
        assert model.output_density(gate, stats) == pytest.approx(123.0)

    def test_zero_density_inputs_give_zero_transitions(self):
        gate = LIB["nand3"].compile_config()
        model = GatePowerModel(TECH)
        stats = {pin: SignalStats.constant(True) for pin in gate.inputs}
        for node in gate.nodes:
            assert model.node_transitions(gate, node, stats) == 0.0

    def test_transitions_nonnegative(self):
        gate = LIB["aoi221"].compile_config()
        model = GatePowerModel(TECH)
        stats = stats_for(gate, 0.7, 1e6)
        for node in gate.nodes:
            assert model.node_transitions(gate, node, stats) >= 0.0

    def test_output_only_formula_ignores_internal(self):
        gate = LIB["nand3"].compile_config()
        model = GatePowerModel(TECH, formula="output-only")
        stats = stats_for(gate)
        for node in gate.internal_nodes:
            assert model.node_transitions(gate, node, stats) == 0.0

    def test_unknown_formula_rejected(self):
        with pytest.raises(ValueError):
            GatePowerModel(TECH, formula="bogus")


class TestGatePower:
    def test_report_structure(self):
        gate = LIB["oai21"].compile_config()
        model = GatePowerModel(TECH)
        report = model.gate_power(gate, stats_for(gate), output_load=5e-15)
        assert len(report.entries) == len(gate.nodes)
        assert report.total == pytest.approx(
            report.internal_power + report.output_power
        )
        assert report.total > 0.0

    def test_missing_stats_raise(self):
        gate = LIB["nand2"].compile_config()
        model = GatePowerModel(TECH)
        with pytest.raises(KeyError):
            model.gate_power(gate, {"a": SignalStats(0.5, 1.0)})

    def test_load_increases_output_power_only(self):
        gate = LIB["nand2"].compile_config()
        model = GatePowerModel(TECH)
        stats = stats_for(gate)
        light = model.gate_power(gate, stats, output_load=0.0)
        heavy = model.gate_power(gate, stats, output_load=50e-15)
        assert heavy.output_power > light.output_power
        assert heavy.internal_power == pytest.approx(light.internal_power)

    def test_power_scales_linearly_with_density(self):
        gate = LIB["nand2"].compile_config()
        model = GatePowerModel(TECH)
        p1 = model.gate_power(gate, stats_for(gate, d=1e4)).total
        p2 = model.gate_power(gate, stats_for(gate, d=2e4)).total
        assert p2 == pytest.approx(2.0 * p1)

    def test_power_scales_with_vdd_squared(self):
        gate = LIB["nand2"].compile_config()
        stats = stats_for(gate)
        p1 = GatePowerModel(TechParams(vdd=2.0)).gate_power(gate, stats).total
        p2 = GatePowerModel(TechParams(vdd=4.0)).gate_power(gate, stats).total
        assert p2 == pytest.approx(4.0 * p1)

    def test_inverter_has_no_internal_power(self):
        gate = LIB["inv"].compile_config()
        model = GatePowerModel(TECH)
        report = model.gate_power(gate, {"a": SignalStats(0.5, 1e5)})
        assert report.internal_power == 0.0
        assert report.output_power > 0.0

    def test_entry_lookup(self):
        gate = LIB["nand2"].compile_config()
        model = GatePowerModel(TECH)
        report = model.gate_power(gate, stats_for(gate))
        assert report.entry(OUT).node == OUT
        with pytest.raises(KeyError):
            report.entry("nope")


class TestOutputStats:
    def test_all_configs_same_output_stats(self):
        """The monotonicity precondition (paper §4.2)."""
        model = GatePowerModel(TECH)
        for name in ("oai21", "aoi22", "nand3"):
            template = LIB[name]
            stats = {
                pin: SignalStats(0.2 + 0.1 * j, 1e4 * (1 + j))
                for j, pin in enumerate(template.pins)
            }
            results = set()
            for config in template.configurations():
                out = model.output_stats(template.compile_config(config), stats)
                results.add((round(out.probability, 12), round(out.density, 6)))
            assert len(results) == 1, name

    def test_output_density_example(self):
        """nand2, P=0.5: P(dF/da) = P(b) = 0.5, so D(y) = 0.5(Da + Db)."""
        gate = LIB["nand2"].compile_config()
        model = GatePowerModel(TECH)
        stats = {"a": SignalStats(0.5, 100.0), "b": SignalStats(0.5, 300.0)}
        assert model.output_density(gate, stats) == pytest.approx(200.0)
