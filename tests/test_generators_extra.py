"""Tests for the additional circuit generators (encoder, shifter, csel)."""

import itertools

import pytest

from repro.bench.generators import (
    barrel_shifter,
    carry_select_adder,
    priority_encoder,
)
from repro.sim.logicsim import check_equivalence
from repro.synth.mapper import map_circuit


class TestPriorityEncoder:
    @pytest.mark.parametrize("width", [2, 4, 5])
    def test_encodes_highest_request(self, width):
        network = priority_encoder(width)
        bits = max(1, (width - 1).bit_length())
        for request in range(1, 1 << width):
            vector = {f"r{i}": bool((request >> i) & 1) for i in range(width)}
            out = network.evaluate_outputs(vector)
            expected = max(i for i in range(width) if (request >> i) & 1)
            got = sum((1 << j) for j in range(bits) if out[f"q{j}"])
            assert got == expected
            assert out["valid"]

    def test_idle_when_no_request(self):
        network = priority_encoder(4)
        out = network.evaluate_outputs({f"r{i}": False for i in range(4)})
        assert not out["valid"]

    def test_maps_equivalently(self):
        network = priority_encoder(5)
        circuit = map_circuit(network)
        assert check_equivalence(network, circuit)

    def test_validation(self):
        with pytest.raises(ValueError):
            priority_encoder(1)


class TestBarrelShifter:
    @pytest.mark.parametrize("log2", [1, 2, 3])
    def test_shifts_right_logically(self, log2):
        network = barrel_shifter(log2)
        width = 1 << log2
        for data in range(1 << width) if width <= 4 else [1, 5, 0b10110101 & ((1 << width) - 1)]:
            for shift in range(width):
                vector = {f"d{i}": bool((data >> i) & 1) for i in range(width)}
                for k in range(log2):
                    vector[f"s{k}"] = bool((shift >> k) & 1)
                out = network.evaluate_outputs(vector)
                got = sum(
                    (1 << i)
                    for i, net in enumerate(network.outputs)
                    if out[net]
                )
                assert got == (data >> shift), (data, shift)

    def test_validation(self):
        with pytest.raises(ValueError):
            barrel_shifter(0)


class TestCarrySelectAdder:
    @pytest.mark.parametrize("width,block", [(3, 2), (6, 4), (5, 3)])
    def test_adds_correctly(self, width, block):
        network = carry_select_adder(width, block)
        # Sample the space deterministically.
        import numpy as np

        rng = np.random.default_rng(1)
        for _ in range(40):
            a = int(rng.integers(0, 1 << width))
            b = int(rng.integers(0, 1 << width))
            cin = int(rng.integers(0, 2))
            vector = {"cin": bool(cin)}
            for i in range(width):
                vector[f"a{i}"] = bool((a >> i) & 1)
                vector[f"b{i}"] = bool((b >> i) & 1)
            out = network.evaluate_outputs(vector)
            got = sum((1 << i) for i in range(width) if out[f"s{i}"])
            got += (1 << width) * int(out[f"c{width - 1}"])
            assert got == a + b + cin, (a, b, cin)

    def test_matches_ripple_adder(self):
        """Same function as the ripple topology (different structure)."""
        from repro.bench.generators import ripple_carry_adder

        csel = carry_select_adder(4, 2)
        rca = ripple_carry_adder(4)
        # Output name sets coincide (s0..s3, c3, cin/a*/b* inputs).
        assert set(csel.outputs) == set(rca.outputs)
        assert check_equivalence(csel, rca)

    def test_maps_equivalently(self):
        network = carry_select_adder(4, 2)
        circuit = map_circuit(network)
        assert check_equivalence(network, circuit)
