"""Tests for the fault-injection harness (`repro.robust.faults`)."""

import os

import pytest

from repro.robust import FaultInjected
from repro.robust import faults


class TestPlanParsing:
    def test_disarmed_is_noop(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.fire("portfolio.restart", match=0)  # must not raise

    def test_unknown_spec_rejected(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "explode-everything=1")
        with pytest.raises(ValueError, match="bad fault spec"):
            faults.fire("portfolio.restart", match=0)

    def test_missing_value_rejected(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "crash-restart")
        with pytest.raises(ValueError):
            faults.fire("portfolio.restart", match=0)

    def test_sleep_needs_seconds(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "sleep-restart=1")
        with pytest.raises(ValueError, match="SECONDS"):
            faults.fire("portfolio.restart", match=1)

    def test_multiple_specs(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_VAR, "crash-restart=3; crash-case=rca4")
        faults.fire("portfolio.restart", match=1)  # no match, no fire
        with pytest.raises(FaultInjected):
            faults.fire("portfolio.restart", match=3)
        with pytest.raises(FaultInjected):
            faults.fire("bench.case", match="rca4")


class TestFiring:
    def test_match_compared_as_strings(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "crash-restart=2")
        with pytest.raises(FaultInjected):
            faults.fire("portfolio.restart", match=2)

    def test_wrong_point_does_not_fire(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "crash-restart=2")
        faults.fire("bench.case", match=2)  # different point

    def test_sleep_stalls(self, monkeypatch):
        import time

        monkeypatch.setenv(faults.ENV_VAR, "sleep-restart=0:0.05")
        start = time.perf_counter()
        faults.fire("portfolio.restart", match=0)
        assert time.perf_counter() - start >= 0.05


class TestOnceSemantics:
    def test_marker_claims_single_firing(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "crash-restart=1")
        monkeypatch.setenv(faults.STATE_ENV_VAR, str(tmp_path))
        with pytest.raises(FaultInjected):
            faults.fire("portfolio.restart", match=1)
        # Second firing finds the marker and stays quiet — the retried
        # worker runs clean.
        faults.fire("portfolio.restart", match=1)
        assert any(name.endswith(".fired") for name in os.listdir(tmp_path))

    def test_without_state_dir_fires_every_time(self, monkeypatch):
        monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
        monkeypatch.setenv(faults.ENV_VAR, "crash-restart=1")
        for _ in range(2):
            with pytest.raises(FaultInjected):
                faults.fire("portfolio.restart", match=1)


class TestTornBytes:
    def test_reports_armed_tear(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "tear-checkpoint=17")
        assert faults.torn_bytes() == 17

    def test_none_when_disarmed(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert faults.torn_bytes() is None


class TestStrictMode:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(faults.STRICT_ENV_VAR, raising=False)
        assert not faults.strict_mode()

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("ON", True),
        ("0", False), ("", False), ("off", False),
    ])
    def test_truthy_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(faults.STRICT_ENV_VAR, value)
        assert faults.strict_mode() is expected
