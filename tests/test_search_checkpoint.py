"""Resume-after-checkpoint must equal the uninterrupted run, bit for bit.

The hard invariant of `repro search --checkpoint/--resume` (see
``src/repro/robust/README.md``): a run resumed from *any* snapshot a
checkpointed run wrote produces a canonical artifact byte-identical to
the uninterrupted run's.  These tests capture every snapshot a run
saves (by wrapping the saver), resume from each one, and byte-compare
``dumps_artifact(strip_timing(...))`` outputs.
"""

import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import dumps_artifact, strip_timing
from repro.bench.suite import get_case
from repro.incremental import search_circuit
from repro.incremental import search as search_mod
from repro.robust import CheckpointError
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit


@pytest.fixture(scope="module")
def adder():
    circuit = map_circuit(get_case("fa1").network())
    stats = ScenarioA(seed=3).input_stats(circuit.inputs)
    return circuit, stats


def canonical(result):
    return dumps_artifact(strip_timing(result.to_artifact()))


def run_capturing_snapshots(tmp_path, monkeypatch, **kwargs):
    """Run a checkpointed search, keeping a copy of every snapshot."""
    snapshots = []
    real_save = search_mod.save_checkpoint

    def capture(path, payload):
        real_save(path, payload)
        copy = tmp_path / f"snap{len(snapshots)}.json"
        shutil.copy(path, copy)
        snapshots.append(str(copy))

    monkeypatch.setattr(search_mod, "save_checkpoint", capture)
    try:
        result = search_circuit(
            checkpoint_path=str(tmp_path / "ck.json"), **kwargs)
    finally:
        monkeypatch.setattr(search_mod, "save_checkpoint", real_save)
    return result, snapshots


class TestGreedyResume:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 30), every=st.integers(1, 4))
    def test_resume_equals_uninterrupted(self, adder, tmp_path_factory,
                                         seed, every):
        circuit, stats = adder
        tmp_path = tmp_path_factory.mktemp("greedy")
        base = canonical(search_circuit(circuit, stats, seed=seed,
                                        strategy="greedy"))
        monkeypatch = pytest.MonkeyPatch()
        try:
            ck_run, snapshots = run_capturing_snapshots(
                tmp_path, monkeypatch, circuit=circuit, input_stats=stats,
                seed=seed, strategy="greedy", checkpoint_every=every)
        finally:
            monkeypatch.undo()
        # Checkpointing itself never perturbs the run.
        assert canonical(ck_run) == base
        for snapshot in snapshots:
            resumed = search_circuit(circuit, stats, seed=seed,
                                     strategy="greedy", resume_path=snapshot)
            assert canonical(resumed) == base


class TestAnnealResume:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 30))
    def test_resume_equals_uninterrupted(self, adder, tmp_path_factory, seed):
        circuit, stats = adder
        tmp_path = tmp_path_factory.mktemp("anneal")
        kwargs = dict(strategy="anneal", anneal_trials=60, polish=True)
        base = canonical(search_circuit(circuit, stats, seed=seed, **kwargs))
        monkeypatch = pytest.MonkeyPatch()
        try:
            ck_run, snapshots = run_capturing_snapshots(
                tmp_path, monkeypatch, circuit=circuit, input_stats=stats,
                seed=seed, checkpoint_every=2, **kwargs)
        finally:
            monkeypatch.undo()
        assert canonical(ck_run) == base
        for snapshot in snapshots:
            resumed = search_circuit(circuit, stats, seed=seed,
                                     resume_path=snapshot, **kwargs)
            assert canonical(resumed) == base


class TestPortfolioResume:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 30))
    def test_resume_equals_uninterrupted(self, adder, tmp_path_factory, seed):
        circuit, stats = adder
        tmp_path = tmp_path_factory.mktemp("portfolio")
        kwargs = dict(strategy="anneal", restarts=3, jobs=1,
                      anneal_trials=40)
        base = canonical(search_circuit(circuit, stats, seed=seed, **kwargs))
        monkeypatch = pytest.MonkeyPatch()
        try:
            ck_run, snapshots = run_capturing_snapshots(
                tmp_path, monkeypatch, circuit=circuit, input_stats=stats,
                seed=seed, **kwargs)
        finally:
            monkeypatch.undo()
        assert canonical(ck_run) == base
        # One snapshot per completed restart.
        assert len(snapshots) == 3
        for snapshot in snapshots:
            resumed = search_circuit(circuit, stats, seed=seed,
                                     resume_path=snapshot, **kwargs)
            assert canonical(resumed) == base


class TestResumeValidation:
    def test_wrong_params_rejected(self, adder, tmp_path):
        circuit, stats = adder
        search_circuit(circuit, stats, seed=0, strategy="greedy",
                       checkpoint_path=str(tmp_path / "ck.json"),
                       checkpoint_every=1)
        with pytest.raises(CheckpointError, match="different search"):
            search_circuit(circuit, stats, seed=1, strategy="greedy",
                           resume_path=str(tmp_path / "ck.json"))

    def test_wrong_engine_kind_rejected(self, adder, tmp_path):
        circuit, stats = adder
        search_circuit(circuit, stats, seed=0, strategy="greedy",
                       checkpoint_path=str(tmp_path / "ck.json"),
                       checkpoint_every=1)
        with pytest.raises(CheckpointError):
            search_circuit(circuit, stats, seed=0, strategy="anneal",
                           restarts=2, jobs=1, anneal_trials=20,
                           resume_path=str(tmp_path / "ck.json"))

    def test_checkpoint_every_validated(self, adder, tmp_path):
        circuit, stats = adder
        with pytest.raises(ValueError):
            search_circuit(circuit, stats, seed=0, strategy="greedy",
                           checkpoint_path=str(tmp_path / "ck.json"),
                           checkpoint_every=0)

    def test_resume_without_checkpoint_still_writes_new_ones(
            self, adder, tmp_path):
        """--checkpoint and --resume compose: resume, then keep saving."""
        circuit, stats = adder
        first = str(tmp_path / "first.json")
        search_circuit(circuit, stats, seed=0, strategy="greedy",
                       checkpoint_path=first, checkpoint_every=1)
        base = canonical(search_circuit(circuit, stats, seed=0,
                                        strategy="greedy"))
        second = str(tmp_path / "second.json")
        resumed = search_circuit(circuit, stats, seed=0, strategy="greedy",
                                 resume_path=first, checkpoint_path=second)
        assert canonical(resumed) == base
