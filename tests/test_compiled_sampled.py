"""Bit-identity of the vectorized sampled kernel (`repro.compiled.sampled`).

The contract under test: the uint64-blocked lane layout — packing,
Markov substreams, Shannon word evaluation, ones/toggle counts —
reproduces the big-int path of `repro.sim.bitsim` **bit for bit**,
both as the from-scratch `propagate_stats(method="sampled")` engine
and as the `StatsCache` backend under random edit sequences, for lane
counts on and off the 64-bit word boundary.  Plus the substream-cache
regression: a rolled-back what-if trial must never redraw streams the
run has already seen.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_logic
from repro.compiled import sampled as sampled_mod
from repro.compiled.sampled import (
    CompiledSampledBackend,
    blocks_from_int,
    compiled_sampled_stats,
    int_from_blocks,
    lane_mask_blocks,
    markov_stream_blocks,
    pack_lane_bools,
)
from repro.incremental import StatsCache, make_backend
from repro.incremental.backends import SampledBackend
from repro.incremental.eco import InputStatsEdit, WhatIf
from repro.sim.bitsim import (
    markov_stream_words,
    sampled_stats,
    stream_rng,
)
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import propagate_stats
from repro.stochastic.signal import SignalStats
from repro.synth.mapper import map_circuit

#: On-boundary, odd sub-word, and multi-word-with-tail lane counts.
LANE_COUNTS = (64, 37, 100)


@pytest.fixture(scope="module")
def wide():
    circuit = map_circuit(random_logic(12, 60, seed=9))
    stats = ScenarioA(seed=2).input_stats(circuit.inputs)
    return circuit, stats


def reorder_specs():
    return st.tuples(
        st.sampled_from(["reorder", "retemplate", "input-stats"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )


def apply_spec(circuit, cache, input_stats, spec):
    kind, selector, value = spec
    if kind == "reorder":
        gates = [g for g in circuit.gates
                 if g.template.num_configurations() > 1]
        gate = gates[selector % len(gates)]
        configurations = gate.template.configurations()
        circuit.set_config(gate.name,
                           configurations[value % len(configurations)])
    elif kind == "retemplate":
        groups = {}
        for template in circuit.library:
            groups.setdefault(template.pins, []).append(template.name)
        gates = [g for g in circuit.gates
                 if len(groups[g.template.pins]) > 1]
        gate = gates[selector % len(gates)]
        others = [name for name in groups[gate.template.pins]
                  if name != gate.template.name]
        circuit.set_template(gate.name, others[value % len(others)])
    else:
        net = circuit.inputs[selector % len(circuit.inputs)]
        probability = 0.05 + 0.9 * ((value % 97) / 96.0)
        density = 1.0e4 * (1 + value % 89)
        input_stats[net] = SignalStats(probability, density)
        cache.set_input_stats(net, input_stats[net])


# ----------------------------------------------------------------------
# The lane-block layout
# ----------------------------------------------------------------------
class TestPacking:
    @pytest.mark.parametrize("lanes", LANE_COUNTS + (1, 63, 65, 1024))
    def test_pack_round_trips_through_big_ints(self, lanes):
        rng = np.random.default_rng(7)
        blocks = (lanes + 63) // 64
        values = rng.random(lanes) < 0.5
        word = sum(1 << k for k, bit in enumerate(values) if bit)
        row = pack_lane_bools(values, blocks)
        assert int_from_blocks(row) == word
        assert np.array_equal(blocks_from_int(word, blocks), row)

    @pytest.mark.parametrize("lanes", LANE_COUNTS + (1, 63, 65))
    def test_lane_mask_matches_big_int_mask(self, lanes):
        blocks = (lanes + 63) // 64
        assert int_from_blocks(lane_mask_blocks(lanes)) == (1 << lanes) - 1
        assert lane_mask_blocks(lanes).shape == (blocks,)

    @pytest.mark.parametrize("lanes", LANE_COUNTS)
    def test_markov_stream_blocks_equal_words(self, lanes):
        stats = SignalStats(0.35, 2.0e5)
        dt = 0.5 * min(stats.mean_high_dwell, stats.mean_low_dwell)
        words = markov_stream_words(stats, lanes, 24, dt,
                                    stream_rng(3, "x1"))
        blocked = markov_stream_blocks(stats, lanes, 24, dt,
                                       stream_rng(3, "x1"))
        assert [int_from_blocks(row) for row in blocked] == words

    def test_markov_stream_blocks_rejects_coarse_dt(self):
        stats = SignalStats(0.5, 2.0e5)
        with pytest.raises(ValueError, match="too coarse"):
            markov_stream_blocks(stats, 64, 8, 1.0,
                                 stream_rng(0, "x1"))


# ----------------------------------------------------------------------
# The from-scratch engine
# ----------------------------------------------------------------------
class TestSampledStats:
    @pytest.mark.parametrize("lanes", LANE_COUNTS)
    def test_bit_identical_to_bigint_path(self, wide, lanes):
        circuit, stats = wide
        reference = sampled_stats(circuit, stats, lanes=lanes, steps=17,
                                  seed=3)
        compiled = compiled_sampled_stats(circuit, stats, lanes=lanes,
                                          steps=17, seed=3)
        assert compiled == reference

    def test_propagate_stats_routes_through_the_kernel(self, wide):
        circuit, stats = wide
        via_flag = propagate_stats(circuit, stats, "sampled", compiled=True,
                                   lanes=37, steps=9, seed=5)
        assert via_flag == sampled_stats(circuit, stats, lanes=37, steps=9,
                                         seed=5)

    def test_validation_matches_bigint_path(self, wide):
        circuit, stats = wide
        with pytest.raises(ValueError, match="too coarse"):
            compiled_sampled_stats(circuit, stats, dt=1.0)
        with pytest.raises(ValueError, match="time step"):
            compiled_sampled_stats(circuit, stats, steps=0)
        with pytest.raises(KeyError, match="missing input statistics"):
            compiled_sampled_stats(circuit, {})


# ----------------------------------------------------------------------
# The StatsCache backend under edits
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    def test_make_backend_routes_on_the_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        assert not isinstance(make_backend("sampled"), CompiledSampledBackend)
        monkeypatch.setenv("REPRO_COMPILED", "1")
        backend = make_backend("sampled", lanes=32, steps=8)
        assert isinstance(backend, CompiledSampledBackend)
        assert backend.name == "sampled"  # artifacts record the estimator

    @settings(max_examples=15, deadline=None)
    @given(st.lists(reorder_specs(), min_size=1, max_size=6),
           st.sampled_from(LANE_COUNTS))
    def test_caches_stay_bit_identical_under_edits(self, wide, specs, lanes):
        circuit_master, stats = wide
        ref_circuit = circuit_master.copy()
        flat_circuit = circuit_master.copy()
        ref_stats, flat_stats = dict(stats), dict(stats)
        ref = StatsCache(ref_circuit, ref_stats, backend="sampled",
                         compiled=False, lanes=lanes, steps=16, seed=4)
        flat = StatsCache(flat_circuit, flat_stats, backend="sampled",
                          compiled=True, lanes=lanes, steps=16, seed=4)
        try:
            assert isinstance(flat.backend, CompiledSampledBackend)
            assert not isinstance(ref.backend, CompiledSampledBackend)
            assert flat.stats() == ref.stats()
            for spec in specs:
                apply_spec(ref_circuit, ref, ref_stats, spec)
                apply_spec(flat_circuit, flat, flat_stats, spec)
                # Same dirty-cone bookkeeping on both engines...
                assert flat.dirty_gates == ref.dirty_gates
                done_ref, done_flat = (ref.gates_repropagated,
                                       flat.gates_repropagated)
                # ...and bit-identical streams, stats and power after it.
                assert flat.stats() == ref.stats()
                assert flat.total_power() == ref.total_power()
                assert (flat.gates_repropagated - done_flat
                        == ref.gates_repropagated - done_ref)
        finally:
            flat.close()
            ref.close()

    def test_backend_dt_freezes_at_full_time(self, wide):
        circuit, stats = wide
        work = circuit.copy()
        with StatsCache(work, stats, backend="sampled", compiled=True,
                        lanes=64, steps=8, seed=1) as cache:
            dt = cache.backend.dt
            assert dt is not None
            net = work.inputs[0]
            cache.set_input_stats(net, SignalStats(0.9, 1.0e4))
            cache.stats()
            assert cache.backend.dt == dt


# ----------------------------------------------------------------------
# Substream-cache rollback regression
# ----------------------------------------------------------------------
class TestStreamCacheRollback:
    """A rolled-back trial restores statistics the run has already
    drawn streams for; the refresh must reuse the cached words — no
    redraw — and land on bit-identical state."""

    @pytest.mark.parametrize("compiled", [False, True])
    def test_trial_rollback_refresh_does_not_redraw(self, wide, monkeypatch,
                                                    compiled):
        circuit, stats = wide
        work = circuit.copy()
        draws = []
        if compiled:
            real = markov_stream_blocks
            monkeypatch.setattr(
                sampled_mod, "markov_stream_blocks",
                lambda *a, **k: draws.append(a) or real(*a, **k))
        else:
            import repro.incremental.backends as backends_mod

            real = markov_stream_words
            monkeypatch.setattr(
                backends_mod, "markov_stream_words",
                lambda *a, **k: draws.append(a) or real(*a, **k))
        with StatsCache(work, stats, backend="sampled", compiled=compiled,
                        lanes=64, steps=16, seed=2) as cache:
            assert len(draws) == len(work.inputs)
            baseline_stats = dict(cache.stats())
            baseline_power = cache.total_power()
            net = work.inputs[0]
            with WhatIf(cache) as trial:
                trial.apply(InputStatsEdit(net, SignalStats(0.9, 3.0e5)))
                trial.power()
            # one fresh draw for the trial's new (P, D)...
            assert len(draws) == len(work.inputs) + 1
            # ...and none for the rollback: the original stream is cached.
            assert cache.stats() == baseline_stats
            assert cache.total_power() == baseline_power
            assert len(draws) == len(work.inputs) + 1
            # Re-trialling the same statistics reuses the cache too.
            with WhatIf(cache) as trial:
                trial.apply(InputStatsEdit(net, SignalStats(0.9, 3.0e5)))
                trial.power()
            cache.stats()
            assert len(draws) == len(work.inputs) + 1

    @pytest.mark.parametrize("compiled", [False, True])
    def test_nested_trial_rollback_restores_cached_streams(self, wide,
                                                           monkeypatch,
                                                           compiled):
        circuit, stats = wide
        work = circuit.copy()
        draws = []
        if compiled:
            real = markov_stream_blocks
            monkeypatch.setattr(
                sampled_mod, "markov_stream_blocks",
                lambda *a, **k: draws.append(a) or real(*a, **k))
        else:
            import repro.incremental.backends as backends_mod

            real = markov_stream_words
            monkeypatch.setattr(
                backends_mod, "markov_stream_words",
                lambda *a, **k: draws.append(a) or real(*a, **k))
        with StatsCache(work, stats, backend="sampled", compiled=compiled,
                        lanes=64, steps=16, seed=2) as cache:
            baseline_stats = dict(cache.stats())
            net_a, net_b = work.inputs[0], work.inputs[1]
            with WhatIf(cache) as outer:
                outer.apply(InputStatsEdit(net_a, SignalStats(0.8, 2.0e5)))
                with WhatIf(cache) as inner:
                    inner.apply(InputStatsEdit(net_b,
                                               SignalStats(0.6, 4.0e5)))
                    inner.power()
                # the inner rollback restored net_b's original stream
                outer.power()
            drawn = len(draws)
            # unwinding both trials redraws nothing: every restored
            # (net, stats) pair is served from the substream cache.
            assert cache.stats() == baseline_stats
            assert len(draws) == drawn

    def test_object_and_compiled_caches_key_identically(self, wide):
        circuit, stats = wide
        ref = SampledBackend(lanes=64, steps=8, seed=0)
        flat = CompiledSampledBackend(lanes=64, steps=8, seed=0)
        ref.full(circuit, stats)
        flat.full(circuit, stats)
        assert set(ref._stream_cache) == set(flat._stream_cache)
        for key, words in ref._stream_cache.items():
            blocked = flat._stream_cache[key]
            assert [int_from_blocks(row) for row in blocked] == words
