"""Cross-module property tests (hypothesis) for the core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.power_model import GatePowerModel
from repro.core.reorder import (
    enumerate_configurations,
    evaluate_configurations,
    pivot_search,
)
from repro.gates import sptree
from repro.gates.capacitance import TechParams
from repro.gates.library import GateConfig, default_library
from repro.gates.network import OUT, TransistorNetwork, compile_gate
from repro.gates.sptree import Leaf, Parallel, Series
from repro.stochastic.signal import SignalStats

LIB = default_library()
MODEL = GatePowerModel(TechParams())


def small_sp_trees():
    """Random SP trees with at most ~6 distinct leaves."""

    def rename_unique(tree):
        counter = [0]

        def walk(node):
            if isinstance(node, Leaf):
                counter[0] += 1
                return Leaf(f"v{counter[0]}")
            return type(node)(tuple(walk(c) for c in node.children))

        return walk(tree)

    leaf = st.builds(Leaf, st.just("x"))
    inner = st.one_of(
        leaf,
        st.lists(leaf, min_size=2, max_size=3).map(lambda cs: Series(tuple(cs))),
        st.lists(leaf, min_size=2, max_size=2).map(lambda cs: Parallel(tuple(cs))),
    )
    tree = st.one_of(
        inner,
        st.lists(inner, min_size=2, max_size=2).map(lambda cs: Series(tuple(cs))),
        st.lists(inner, min_size=2, max_size=2).map(lambda cs: Parallel(tuple(cs))),
    )
    return tree.map(rename_unique).map(sptree.canonical).filter(
        lambda t: len(sptree.leaves(t)) <= 6
    )


class TestPivotEqualsBruteForceOnRandomGates:
    @given(small_sp_trees())
    @settings(max_examples=40, deadline=None)
    def test_pivot_search_complete(self, pdn):
        """Figure 4 enumerates exactly the permutation set on ANY SP gate."""
        pun = sptree.dual(pdn)
        start = GateConfig(pdn, pun)
        discovered = {c.key() for c in pivot_search(start)}
        expected = {
            GateConfig(p, q).key()
            for p in sptree.enumerate_orderings(pdn)
            for q in sptree.enumerate_orderings(pun)
        }
        assert discovered == expected

    @given(small_sp_trees())
    @settings(max_examples=30, deadline=None)
    def test_every_ordering_same_function(self, pdn):
        variables = tuple(sorted(sptree.leaves(pdn)))
        reference = None
        for config in pivot_search(GateConfig(pdn, sptree.dual(pdn))):
            net = TransistorNetwork(config.pdn, config.pun, variables)
            tt = net.output_function()
            if reference is None:
                reference = tt
            assert tt == reference


class TestModelInvariants:
    @given(
        st.sampled_from(["nand3", "oai21", "aoi22", "aoi211"]),
        st.lists(st.floats(min_value=0.05, max_value=0.95), min_size=4, max_size=4),
        st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=4, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_best_min_worst_max(self, name, probs, densities):
        template = LIB[name]
        stats = {
            pin: SignalStats(p, d)
            for pin, p, d in zip(template.pins, probs, densities)
        }
        evaluations = evaluate_configurations(template, stats, MODEL)
        powers = [e.power for e in evaluations]
        assert all(p >= 0.0 for p in powers)
        assert all(math.isfinite(p) for p in powers)

    @given(
        st.sampled_from(["nand2", "nor3", "oai21", "aoi221"]),
        st.lists(st.floats(min_value=0.02, max_value=0.98), min_size=5, max_size=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_node_probability_steady_state_identity(self, name, probs):
        template = LIB[name]
        gate = template.compile_config()
        pin_probs = dict(zip(template.pins, probs))
        for node in gate.nodes:
            ph = gate.h[node].probability(pin_probs)
            pg = gate.g[node].probability(pin_probs)
            p = MODEL.node_probability(gate, node, pin_probs)
            if ph + pg > 1e-9:
                # Steady state balances charge and discharge flows.
                assert p * pg == pytest.approx((1 - p) * ph, abs=1e-9)

    @given(st.sampled_from(list(LIB.names)))
    @settings(max_examples=17, deadline=None)
    def test_output_node_hg_complementary_every_gate(self, name):
        gate = LIB[name].compile_config()
        assert gate.g[OUT] == ~gate.h[OUT]

    @given(
        st.sampled_from(["nand3", "oai21", "aoi22"]),
        st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_power_scales_linearly_in_density(self, name, factor):
        template = LIB[name]
        base = {
            pin: SignalStats(0.4, 1e4 * (j + 1))
            for j, pin in enumerate(template.pins)
        }
        scaled = {
            pin: SignalStats(s.probability, s.density * factor)
            for pin, s in base.items()
        }
        gate = template.compile_config()
        p1 = MODEL.gate_power(gate, base).total
        p2 = MODEL.gate_power(gate, scaled).total
        assert p2 == pytest.approx(factor * p1, rel=1e-9)


class TestSimulatorInvariants:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_energy_nonnegative_and_consistent(self, seed):
        from repro.circuit.netlist import Circuit
        from repro.sim.stimulus import ScenarioA
        from repro.sim.switchsim import SwitchLevelSimulator

        c = Circuit("p", LIB)
        for n in ("a", "b", "c"):
            c.add_input(n)
        c.add_output("y")
        c.add_gate("g0", "aoi21", {"a": "a", "b": "b", "c": "c"}, "n0")
        c.add_gate("g1", "nand2", {"a": "n0", "b": "c"}, "y")
        scenario = ScenarioA(seed=seed)
        stimulus = scenario.generate(c.inputs, duration=3e-5)
        report = SwitchLevelSimulator(c).run(stimulus)
        assert report.energy >= 0.0
        assert report.internal_energy >= 0.0
        for net, count in report.net_transitions.items():
            assert count >= 0
            assert 0.0 <= report.net_high_time[net] <= report.duration * (1 + 1e-9)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_zero_delay_never_exceeds_timed_activity(self, seed):
        """Settled simulation is a lower bound on per-net transitions."""
        from repro.circuit.netlist import Circuit
        from repro.sim.stimulus import ScenarioB
        from repro.sim.switchsim import SwitchLevelSimulator

        c = Circuit("p", LIB)
        for n in ("a", "b", "c"):
            c.add_input(n)
        c.add_output("y")
        c.add_gate("g0", "inv", {"a": "a"}, "n0")
        c.add_gate("g1", "nand3", {"a": "n0", "b": "b", "c": "c"}, "n1")
        c.add_gate("g2", "nand2", {"a": "n1", "b": "a"}, "y")
        stimulus = ScenarioB(seed=seed).generate(c.inputs, cycles=60)
        timed = SwitchLevelSimulator(c, delay_mode="elmore").run(stimulus)
        settled = SwitchLevelSimulator(c, delay_mode="zero").run(stimulus)
        total_timed = sum(timed.net_transitions.values())
        total_settled = sum(settled.net_transitions.values())
        assert total_settled <= total_timed


def _bitsim_test_circuit():
    from repro.circuit.netlist import Circuit

    c = Circuit("bp", LIB)
    for n in ("a", "b", "c"):
        c.add_input(n)
    c.add_output("y")
    c.add_gate("g0", "aoi21", {"a": "a", "b": "b", "c": "c"}, "n0")
    c.add_gate("g1", "nor2", {"a": "n0", "b": "a"}, "n1")
    c.add_gate("g2", "nand2", {"a": "n1", "b": "c"}, "y")
    return c


class TestBitParallelInvariants:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_toggle_counts_equal_zero_delay_switchsim(self, seed):
        """Bit-parallel stimulus replay IS the settled simulation: per-net
        toggle counts match the zero-delay SwitchLevelSimulator exactly on
        identical stimulus, for any seed."""
        from repro.sim.bitsim import BitParallelSimulator
        from repro.sim.stimulus import ScenarioB
        from repro.sim.switchsim import SwitchLevelSimulator

        c = _bitsim_test_circuit()
        stimulus = ScenarioB(seed=seed).generate(c.inputs, cycles=50)
        settled = SwitchLevelSimulator(c, delay_mode="zero").run(stimulus)
        report = BitParallelSimulator(c, lanes=1).run_stimulus(stimulus)
        assert report.toggles == settled.net_transitions

    @given(st.sampled_from([0, 1, 2, 3]))
    @settings(max_examples=4, deadline=None)
    def test_lane_count_invariance(self, seed):
        """W=64 and W=4096 lanes estimate statistically equal (P, D):
        the packing width is an implementation detail, not a parameter
        of the estimator.  Bound: 4 combined standard errors."""
        import math

        from repro.sim.bitsim import BitParallelSimulator

        c = _bitsim_test_circuit()
        stats = {
            "a": SignalStats(0.35, 4.0e5),
            "b": SignalStats(0.6, 1.0e6),
            "c": SignalStats(0.5, 7.0e5),
        }
        steps = 32
        narrow = BitParallelSimulator(c, lanes=64).run(stats, steps=steps, seed=seed)
        wide = BitParallelSimulator(c, lanes=4096).run(stats, steps=steps, seed=seed + 100)
        assert narrow.dt == wide.dt
        for net in c.nets():
            p_narrow, p_wide = narrow.probability(net), wide.probability(net)
            p = 0.5 * (p_narrow + p_wide)
            stderr = math.sqrt(max(p * (1 - p), 1e-4)) * (
                1 / math.sqrt(narrow.samples) + 1 / math.sqrt(wide.samples)
            )
            assert abs(p_narrow - p_wide) <= 4 * stderr + 1e-9
            d_narrow, d_wide = narrow.density(net), wide.density(net)
            scale = max(d_narrow, d_wide, 1e-12)
            # Densities are per-step Bernoulli means as well; allow the
            # same relative sampling slack on the narrow run.
            assert abs(d_narrow - d_wide) / scale <= 4 / math.sqrt(
                min(narrow.lanes * (steps - 1), wide.lanes * (steps - 1))
            ) * 3 + 0.02
