"""Tests for logic networks and the BLIF reader/writer."""

import itertools

import pytest

from repro.circuit.blif import (
    BlifError,
    parse_blif,
    parse_mapped_blif,
    write_blif,
    write_mapped_blif,
)
from repro.circuit.logic import Cube, LogicError, LogicNetwork, LogicNode
from repro.circuit.netlist import Circuit
from repro.gates.library import default_library

LIB = default_library()

FULL_ADDER_BLIF = """
# one-bit full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
"""


class TestCube:
    def test_matches(self):
        cube = Cube("1-0")
        assert cube.matches([True, True, False])
        assert cube.matches([True, False, False])
        assert not cube.matches([False, True, False])
        assert not cube.matches([True, True, True])

    def test_bad_chars(self):
        with pytest.raises(LogicError):
            Cube("1x0")

    def test_arity_mismatch(self):
        with pytest.raises(LogicError):
            Cube("10").matches([True])


class TestLogicNode:
    def test_function_onset(self):
        node = LogicNode("f", ("a", "b"), (Cube("11"),))
        tt = node.function()
        assert tt.count_minterms() == 1

    def test_function_offset_phase(self):
        node = LogicNode("f", ("a", "b"), (Cube("11"),), phase=False)
        assert node.function().count_minterms() == 3
        assert node.evaluate({"a": True, "b": True}) is False

    def test_constant_node(self):
        one = LogicNode("k1", (), (Cube(""),))
        zero = LogicNode("k0", (), ())
        assert one.constant_value() is True
        assert zero.constant_value() is False

    def test_arity_check(self):
        with pytest.raises(LogicError):
            LogicNode("f", ("a",), (Cube("11"),))


class TestLogicNetwork:
    def test_evaluate_full_adder(self):
        network = parse_blif(FULL_ADDER_BLIF)
        for a, b, cin in itertools.product([0, 1], repeat=3):
            out = network.evaluate_outputs(
                {"a": bool(a), "b": bool(b), "cin": bool(cin)}
            )
            assert out["sum"] == bool((a + b + cin) & 1)
            assert out["cout"] == bool(a + b + cin >= 2)

    def test_topological_nodes_cycle_detection(self):
        net = LogicNetwork("cyc")
        net.add_input("a")
        net.add_cover("x", ("a", "z"), ["11"])
        net.add_cover("z", ("x",), ["1"])
        with pytest.raises(LogicError):
            net.topological_nodes()

    def test_duplicate_driver_rejected(self):
        net = LogicNetwork("dup")
        net.add_input("a")
        net.add_cover("x", ("a",), ["1"])
        with pytest.raises(LogicError):
            net.add_cover("x", ("a",), ["0"])

    def test_undriven_output_detected(self):
        net = LogicNetwork("bad")
        net.add_input("a")
        net.add_output("y")
        with pytest.raises(LogicError):
            net.validate()


class TestBlifParser:
    def test_parse_structure(self):
        network = parse_blif(FULL_ADDER_BLIF)
        assert network.name == "fa"
        assert network.inputs == ["a", "b", "cin"]
        assert network.outputs == ["sum", "cout"]
        assert len(network) == 2

    def test_comments_and_continuations(self):
        text = """
.model c  # trailing comment
.inputs a \\
        b
.outputs y
.names a b y
11 1
.end
"""
        network = parse_blif(text)
        assert network.inputs == ["a", "b"]
        assert network.evaluate_outputs({"a": True, "b": True})["y"] is True

    def test_offset_cover(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
        network = parse_blif(text)
        assert network.evaluate_outputs({"a": True, "b": True})["y"] is False
        assert network.evaluate_outputs({"a": False, "b": True})["y"] is True

    def test_mixed_phase_rejected(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_constant_one_node(self):
        text = ".model m\n.inputs a\n.outputs y\n.names y\n1\n.end\n"
        network = parse_blif(text)
        assert network.evaluate_outputs({"a": False})["y"] is True

    def test_latch_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_empty_rejected(self):
        with pytest.raises(BlifError):
            parse_blif("# nothing here\n")

    def test_roundtrip(self):
        network = parse_blif(FULL_ADDER_BLIF)
        back = parse_blif(write_blif(network))
        for vector in itertools.product([False, True], repeat=3):
            env = dict(zip(("a", "b", "cin"), vector))
            assert network.evaluate_outputs(env) == back.evaluate_outputs(env)


class TestMappedBlif:
    def _circuit(self):
        c = Circuit("m", LIB)
        c.add_input("a")
        c.add_input("b")
        c.add_output("y")
        c.add_gate("g0", "nand2", {"a": "a", "b": "b"}, "n0")
        c.add_gate("g1", "inv", {"a": "n0"}, "y")
        return c

    def test_roundtrip(self):
        circuit = self._circuit()
        text = write_mapped_blif(circuit)
        back = parse_mapped_blif(text, LIB)
        assert back.inputs == circuit.inputs
        assert back.outputs == circuit.outputs
        for vector in itertools.product([False, True], repeat=2):
            env = dict(zip(("a", "b"), vector))
            assert back.evaluate(env)["y"] == circuit.evaluate(env)["y"]

    def test_gate_lines_have_output_binding(self):
        text = ".model m\n.inputs a\n.outputs y\n.gate inv a=a\n.end\n"
        with pytest.raises(BlifError):
            parse_mapped_blif(text, LIB)

    def test_names_rejected_in_mapped(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
        with pytest.raises(BlifError):
            parse_mapped_blif(text, LIB)
