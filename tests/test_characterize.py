"""Tests for library characterisation datasheets."""

import pytest

from repro.gates.capacitance import TechParams
from repro.gates.characterize import characterize_gate, characterize_library
from repro.gates.library import default_library
from repro.stochastic.signal import SignalStats

LIB = default_library()


class TestCharacterizeGate:
    def test_covers_all_configs(self):
        sheet = characterize_gate(LIB["oai21"])
        assert len(sheet.configurations) == 4
        assert len(sheet.instances) == 2
        labels = {c.instance_label for c in sheet.configurations}
        assert labels == {"A", "B"}

    def test_delays_and_caps_positive(self):
        sheet = characterize_gate(LIB["aoi22"])
        for char in sheet.configurations:
            assert char.worst_delay > 0.0
            assert all(d > 0.0 for d in char.pin_delays.values())
            assert all(c > 0.0 for c in char.internal_capacitances)
            assert char.reference_power > 0.0

    def test_worst_delay_is_max_pin_delay(self):
        sheet = characterize_gate(LIB["nand3"])
        for char in sheet.configurations:
            assert char.worst_delay == pytest.approx(max(char.pin_delays.values()))

    def test_inverter_trivial(self):
        sheet = characterize_gate(LIB["inv"])
        assert len(sheet.configurations) == 1
        assert sheet.configurations[0].internal_capacitances == ()
        assert sheet.power_spread == 0.0
        assert not sheet.speed_power_conflict

    def test_symmetric_stats_no_power_spread_on_nand(self):
        """With identical pin stats every nand3 ordering draws the same."""
        sheet = characterize_gate(LIB["nand3"])
        assert sheet.power_spread == pytest.approx(0.0, abs=1e-9)

    def test_asymmetric_stats_create_spread_and_conflict(self):
        """Skewed activity separates power optima from speed optima."""
        template = LIB["oai21"]
        stats = {
            "a": SignalStats(0.5, 1.0e6),
            "b": SignalStats(0.5, 1.0e5),
            "c": SignalStats(0.5, 1.0e4),
        }
        sheet = characterize_gate(template, stats=stats)
        assert sheet.power_spread > 0.02

    def test_extremes_are_members(self):
        sheet = characterize_gate(LIB["aoi221"])
        keys = {c.config.key() for c in sheet.configurations}
        assert sheet.fastest.config.key() in keys
        assert sheet.lowest_power.config.key() in keys


class TestCharacterizeLibrary:
    def test_whole_library(self):
        sheets = characterize_library(LIB, TechParams())
        assert len(sheets) == 17
        by_name = {s.template.name: s for s in sheets}
        assert len(by_name["aoi222"].configurations) == 48
        # Multi-instance cells really expose distinct layout classes.
        assert len(by_name["aoi221"].instances) == 3
