"""Tests for the transistor-network graph and H/G path extraction.

Includes the paper's own Figure 2(a) worked example.
"""

import pytest

from repro.boolean.expr import parse_expr
from repro.gates import sptree
from repro.gates.network import OUT, CompiledGate, TransistorNetwork, compile_gate
from repro.gates.sptree import Leaf, Parallel, Series


def oai21_network():
    """The paper's Figure 2(a): PDN = (a1|a2)·b with the pair at the output."""
    pdn = Series((Parallel((Leaf("a1"), Leaf("a2"))), Leaf("b")))
    return TransistorNetwork(pdn, inputs=("a1", "a2", "b"))


class TestConstruction:
    def test_transistor_counts(self):
        net = oai21_network()
        n_types = [t for t in net.transistors if t.ttype == "n"]
        p_types = [t for t in net.transistors if t.ttype == "p"]
        assert len(n_types) == 3 and len(p_types) == 3

    def test_internal_nodes(self):
        net = oai21_network()
        # One PDN junction plus one PUN junction.
        assert len(net.internal_nodes) == 2

    def test_inverter_has_no_internal_nodes(self):
        net = TransistorNetwork(Leaf("a"))
        assert net.internal_nodes == ()
        assert net.output_function().bits == 0b01  # NOT a

    def test_default_pun_is_dual(self):
        net = oai21_network()
        assert sptree.canonical_key(net.pun) == sptree.canonical_key(
            sptree.dual(net.pdn)
        )

    def test_mismatched_pun_rejected(self):
        pdn = Series((Leaf("a"), Leaf("b")))
        bad_pun = Parallel((Leaf("a"), Leaf("c")))
        with pytest.raises(ValueError):
            TransistorNetwork(pdn, bad_pun)

    def test_noncomplementary_pun_rejected(self):
        pdn = Series((Leaf("a"), Leaf("b")))
        bad_pun = Series((Leaf("a"), Leaf("b")))  # same topology, wrong logic
        with pytest.raises(ValueError):
            TransistorNetwork(pdn, bad_pun)

    def test_conducts(self):
        net = oai21_network()
        n = next(t for t in net.transistors if t.ttype == "n")
        p = next(t for t in net.transistors if t.ttype == "p")
        assert n.conducts(True) and not n.conducts(False)
        assert p.conducts(False) and not p.conducts(True)


class TestPathFunctions:
    def test_paper_figure_2a_h_function(self):
        """H_n1 = (a1 + a2)·!b — the paper's worked minterm example."""
        net = oai21_network()
        variables = net.inputs
        # The PDN internal node is the one whose G-function is exactly b.
        b_tt = parse_expr("b").to_truthtable(variables)
        pdn_node = next(n for n in net.internal_nodes if net.g_function(n) == b_tt)
        expected_h = parse_expr("(a1 | a2) & !b").to_truthtable(variables)
        assert net.h_function(pdn_node) == expected_h

    def test_paper_figure_2a_g_function(self):
        """G_n1 = b."""
        net = oai21_network()
        variables = net.inputs
        b_tt = parse_expr("b").to_truthtable(variables)
        assert any(net.g_function(n) == b_tt for n in net.internal_nodes)

    def test_output_is_complement_of_pdn(self):
        net = oai21_network()
        expected = parse_expr("!((a1 | a2) & b)").to_truthtable(net.inputs)
        assert net.output_function() == expected

    def test_output_h_g_complementary(self):
        net = oai21_network()
        assert net.g_function(OUT) == ~net.h_function(OUT)

    def test_rail_path_functions(self):
        net = oai21_network()
        assert net.path_function("vdd", "vdd").constant_value() is True

    def test_bad_rail(self):
        net = oai21_network()
        with pytest.raises(ValueError):
            net.path_function(OUT, "y")

    @pytest.mark.parametrize(
        "expr_text",
        ["a & b", "a | b", "(a & b) | c", "(a | b) & c",
         "(a & b) | (c & d)", "(a | b) & (c | d) & e"],
    )
    def test_hg_complementarity_all_gates(self, expr_text):
        pdn = sptree.from_expr(parse_expr(expr_text))
        net = TransistorNetwork(pdn)
        assert net.g_function(OUT) == ~net.h_function(OUT)

    def test_internal_nodes_never_shorted(self):
        """H and G of any node can never be 1 simultaneously."""
        for expr_text in ["(a | b) & c", "(a & b) | (c & d)", "a & b & c"]:
            net = TransistorNetwork(sptree.from_expr(parse_expr(expr_text)))
            for node in net.nodes:
                h, g = net.h_function(node), net.g_function(node)
                assert (h & g).bits == 0


class TestCompiledGate:
    def test_boolean_differences_present(self):
        gate = compile_gate(sptree.from_expr(parse_expr("(a | b) & c")))
        for node in gate.nodes:
            for pin in gate.inputs:
                assert (node, pin) in gate.dh
                assert (node, pin) in gate.dg

    def test_terminal_counts_oai21(self):
        gate = CompiledGate(oai21_network())
        # Output touches: 2 parallel N tops + 1 P drain (series bottom of PUN
        # pair) + 1 P drain (parallel b'); PDN junction: 2 + 1; PUN junction: 2.
        assert gate.terminal_counts[OUT] == 4
        internal = sorted(gate.terminal_counts[n] for n in gate.internal_nodes)
        assert internal == [2, 3]

    def test_evaluate_nodes_drive_and_retain(self):
        gate = CompiledGate(oai21_network())
        prev = {n: 0 for n in gate.nodes}
        # a1=1, a2=0, b=1: PDN conducts, output 0, PDN node 0.
        m = gate.minterm_of({"a1": True, "a2": False, "b": True})
        states = gate.evaluate_nodes(m, prev)
        assert states[OUT] == 0
        # a1=0, a2=0, b=0: output 1; PDN junction floats -> retains.
        prev = dict(states)
        m = gate.minterm_of({"a1": False, "a2": False, "b": False})
        states = gate.evaluate_nodes(m, prev)
        assert states[OUT] == 1
        pdn_node = next(
            n for n in gate.internal_nodes
            if gate.g[n] == parse_expr("b").to_truthtable(gate.inputs)
        )
        assert states[pdn_node] == prev[pdn_node]  # floating: retained

    def test_minterm_of_matches_pin_order(self):
        gate = CompiledGate(oai21_network())
        assert gate.minterm_of({"a1": True, "a2": False, "b": True}) == 0b101

    def test_output_truth_table_matches_function(self):
        gate = CompiledGate(oai21_network())
        for m in range(8):
            values = {p: bool((m >> j) & 1) for j, p in enumerate(gate.inputs)}
            expected = not ((values["a1"] or values["a2"]) and values["b"])
            assert gate.output_tt.evaluate_index(m) is expected
