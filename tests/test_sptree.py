"""Tests for series-parallel trees: duality, canonical form, orderings."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.expr import parse_expr
from repro.gates import sptree
from repro.gates.sptree import Leaf, Parallel, Series


def sp_strategy(max_depth=2):
    """Random SP trees over distinct leaf names."""
    counter = st.shared(st.just(None))  # placeholder, names assigned post hoc

    def build(depth):
        if depth == 0:
            return st.builds(Leaf, st.just("x"))
        child = build(depth - 1)
        return st.one_of(
            st.builds(Leaf, st.just("x")),
            st.lists(child, min_size=2, max_size=3).map(lambda cs: Series(tuple(cs))),
            st.lists(child, min_size=2, max_size=3).map(lambda cs: Parallel(tuple(cs))),
        )

    def rename_unique(tree):
        counter = [0]

        def walk(node):
            if isinstance(node, Leaf):
                counter[0] += 1
                return Leaf(f"x{counter[0]}")
            return type(node)(tuple(walk(c) for c in node.children))

        return walk(tree)

    return build(max_depth).map(rename_unique)


class TestConstruction:
    def test_series_arity(self):
        with pytest.raises(ValueError):
            Series((Leaf("a"),))

    def test_parallel_arity(self):
        with pytest.raises(ValueError):
            Parallel((Leaf("a"),))

    def test_normalize_flattens_series(self):
        t = Series((Series((Leaf("a"), Leaf("b"))), Leaf("c")))
        assert sptree.normalize(t) == Series((Leaf("a"), Leaf("b"), Leaf("c")))

    def test_normalize_flattens_parallel(self):
        t = Parallel((Parallel((Leaf("a"), Leaf("b"))), Leaf("c")))
        assert sptree.normalize(t) == Parallel((Leaf("a"), Leaf("b"), Leaf("c")))

    def test_canonical_sorts_parallel(self):
        t1 = Parallel((Leaf("b"), Leaf("a")))
        t2 = Parallel((Leaf("a"), Leaf("b")))
        assert sptree.canonical(t1) == sptree.canonical(t2)

    def test_canonical_preserves_series_order(self):
        t = Series((Leaf("b"), Leaf("a")))
        assert sptree.canonical(t) == t


class TestDuality:
    def test_dual_swaps_composition(self):
        t = Series((Parallel((Leaf("a"), Leaf("b"))), Leaf("c")))
        d = sptree.dual(t)
        assert isinstance(d, Parallel)
        assert isinstance(d.children[0], Series)

    @given(sp_strategy())
    @settings(max_examples=60, deadline=None)
    def test_dual_is_involution(self, tree):
        assert sptree.dual(sptree.dual(tree)) == tree

    @given(sp_strategy())
    @settings(max_examples=60, deadline=None)
    def test_dual_complements_conduction(self, tree):
        """PDN on with inputs v  <=>  PUN (dual, P-type) off — complementarity."""
        variables = sptree.leaves(tree)
        pdn = sptree.to_expr(tree, "n").to_truthtable(variables)
        pun = sptree.to_expr(sptree.dual(tree), "p").to_truthtable(variables)
        assert pun == ~pdn


class TestExprConversion:
    def test_from_expr_oai21(self):
        t = sptree.from_expr(parse_expr("(a | b) & c"))
        assert t == Series((Parallel((Leaf("a"), Leaf("b"))), Leaf("c")))

    def test_from_expr_rejects_not(self):
        with pytest.raises(ValueError):
            sptree.from_expr(parse_expr("!a & b"))

    def test_to_expr_polarity(self):
        t = Series((Leaf("a"), Leaf("b")))
        n = sptree.to_expr(t, "n").to_truthtable(("a", "b"))
        p = sptree.to_expr(t, "p").to_truthtable(("a", "b"))
        assert n == parse_expr("a & b").to_truthtable(("a", "b"))
        assert p == parse_expr("!a & !b").to_truthtable(("a", "b"))

    def test_bad_polarity(self):
        with pytest.raises(ValueError):
            sptree.to_expr(Leaf("a"), "x")

    @given(sp_strategy())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, tree):
        tree = sptree.canonical(tree)
        back = sptree.canonical(sptree.from_expr(sptree.to_expr(tree, "n")))
        assert back == tree


class TestOrderings:
    def test_leaf_single_ordering(self):
        assert sptree.num_orderings(Leaf("a")) == 1
        assert list(sptree.enumerate_orderings(Leaf("a"))) == [Leaf("a")]

    def test_series3_orderings(self):
        t = Series((Leaf("a"), Leaf("b"), Leaf("c")))
        orderings = list(sptree.enumerate_orderings(t))
        assert len(orderings) == 6 == sptree.num_orderings(t)
        assert len({sptree._ordered_key(o) for o in orderings}) == 6

    def test_parallel_one_ordering(self):
        t = Parallel((Leaf("a"), Leaf("b"), Leaf("c")))
        assert sptree.num_orderings(t) == 1
        assert len(list(sptree.enumerate_orderings(t))) == 1

    def test_nested_counts(self):
        # ((a|b) c) series pair: 2 orders; parallel inner: none.
        t = sptree.from_expr(parse_expr("(a | b) & c"))
        assert sptree.num_orderings(t) == 2

    @given(sp_strategy())
    @settings(max_examples=40, deadline=None)
    def test_enumeration_matches_count_and_function(self, tree):
        tree = sptree.canonical(tree)
        count = sptree.num_orderings(tree)
        if count > 200:
            return
        orderings = list(sptree.enumerate_orderings(tree))
        assert len(orderings) == count
        variables = tuple(sorted(sptree.leaves(tree)))
        reference = sptree.to_expr(tree, "n").to_truthtable(variables)
        for o in orderings:
            assert sptree.to_expr(o, "n").to_truthtable(variables) == reference


class TestPivots:
    def test_series_gaps(self):
        t = sptree.from_expr(parse_expr("(a | b) & c & d"))
        gaps = sptree.series_gaps(t)
        assert ((), 0) in gaps and ((), 1) in gaps
        assert len(gaps) == 2

    def test_nested_gaps(self):
        t = sptree.from_expr(parse_expr("((a & b) | c) & d"))
        gaps = sptree.series_gaps(t)
        # Root gap plus the gap inside the series a&b (child 0 of child 0).
        assert ((), 0) in gaps and ((0, 0), 0) in gaps

    def test_swap_gap_root(self):
        t = Series((Leaf("a"), Leaf("b"), Leaf("c")))
        swapped = sptree.swap_gap(t, (), 1)
        assert swapped == Series((Leaf("a"), Leaf("c"), Leaf("b")))

    def test_swap_gap_nested(self):
        t = Parallel((Series((Leaf("a"), Leaf("b"))), Leaf("c")))
        swapped = sptree.swap_gap(t, (0,), 0)
        assert swapped == Parallel((Series((Leaf("b"), Leaf("a"))), Leaf("c")))

    def test_swap_gap_errors(self):
        with pytest.raises(ValueError):
            sptree.swap_gap(Leaf("a"), (0,), 0)
        with pytest.raises(ValueError):
            sptree.swap_gap(Series((Leaf("a"), Leaf("b"))), (), 5)

    def test_swap_is_involution(self):
        t = sptree.from_expr(parse_expr("a & b & c"))
        assert sptree.swap_gap(sptree.swap_gap(t, (), 0), (), 0) == t


class TestRelabel:
    def test_relabel_dict(self):
        t = Series((Leaf("a"), Leaf("b")))
        assert sptree.relabel(t, {"a": "x"}) == Series((Leaf("x"), Leaf("b")))

    def test_transistor_count(self):
        t = sptree.from_expr(parse_expr("(a | b) & (c | d)"))
        assert sptree.transistor_count(t) == 4
