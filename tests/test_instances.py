"""Tests for gate instance classes (the paper's gate[A]/gate[B] notation)."""

import pytest

from repro.gates.instances import (
    GateInstanceClass,
    instance_partition,
    instance_table,
    unlabelled_key,
)
from repro.gates.library import default_library
from repro.gates.sptree import Leaf, Parallel, Series

LIB = default_library()

#: Expected instance counts, derived from the unlabelled-shape argument
#: (oai21[A,B], aoi211[A,B], aoi221[A,B,C] appear in the paper's Table 2).
EXPECTED_INSTANCES = {
    "inv": 1,
    "nand2": 1,
    "nand3": 1,
    "nand4": 1,
    "nor2": 1,
    "nor3": 1,
    "nor4": 1,
    "aoi21": 2,
    "oai21": 2,
    "aoi22": 1,
    "oai22": 1,
    "aoi211": 3,   # paper: aoi211[A,B,C]
    "oai211": 3,
    "aoi221": 3,   # paper: aoi221[A,B,C]
    "oai221": 3,
    "aoi222": 1,
    "oai222": 1,
}


class TestUnlabelledKey:
    def test_erases_names(self):
        assert unlabelled_key(Leaf("a")) == unlabelled_key(Leaf("z"))

    def test_series_order_matters(self):
        t1 = Series((Parallel((Leaf("a"), Leaf("b"))), Leaf("c")))
        t2 = Series((Leaf("c"), Parallel((Leaf("a"), Leaf("b")))))
        assert unlabelled_key(t1) != unlabelled_key(t2)

    def test_parallel_order_ignored(self):
        t1 = Parallel((Series((Leaf("a"), Leaf("b"))), Leaf("c")))
        t2 = Parallel((Leaf("x"), Series((Leaf("p"), Leaf("q")))))
        assert unlabelled_key(t1) == unlabelled_key(t2)

    def test_pure_permutation_same_shape(self):
        t1 = Series((Leaf("a"), Leaf("b"), Leaf("c")))
        t2 = Series((Leaf("c"), Leaf("a"), Leaf("b")))
        assert unlabelled_key(t1) == unlabelled_key(t2)


class TestInstancePartition:
    def test_expected_counts(self):
        for name, expected in EXPECTED_INSTANCES.items():
            classes = instance_partition(LIB[name])
            assert len(classes) == expected, name

    def test_partition_covers_all_configs(self):
        for name in ("oai21", "aoi221", "nand3"):
            template = LIB[name]
            classes = instance_partition(template)
            covered = [c.key() for cls in classes for c in cls.configurations]
            assert len(covered) == template.num_configurations()
            assert len(set(covered)) == len(covered)

    def test_oai21_two_by_two(self):
        """oai21[A] and oai21[B] each realise two configurations (paper §5.1)."""
        classes = instance_partition(LIB["oai21"])
        assert sorted(c.num_input_reorderings for c in classes) == [2, 2]
        assert [c.label for c in classes] == ["A", "B"]
        assert classes[0].name == "oai21[A]"

    def test_aoi221_three_instances_of_eight(self):
        classes = instance_partition(LIB["aoi221"])
        assert [c.num_input_reorderings for c in classes] == [8, 8, 8]

    def test_single_instance_gates_pure_input_reordering(self):
        """NAND/NOR families: one layout, all configs are input renamings."""
        for name in ("nand3", "nor4", "aoi22", "oai222"):
            classes = instance_partition(LIB[name])
            assert len(classes) == 1, name
            assert classes[0].num_input_reorderings == LIB[name].num_configurations()


class TestInstanceTable:
    def test_rows(self):
        table = instance_table(LIB)
        assert len(table) == 17
        as_dict = {name: (inst, conf) for name, inst, conf in table}
        assert as_dict["oai21"] == (2, 4)
        assert as_dict["aoi221"] == (3, 24)
        # Instances always divide the configuration count.
        for name, (inst, conf) in as_dict.items():
            assert conf % inst == 0, name
