"""End-to-end recovery: injected faults, supervised retries, partial artifacts."""

import signal
import warnings

import pytest

from repro.bench.runner import dumps_artifact, run_suite, strip_timing
from repro.bench.suite import get_case
from repro.incremental import StatsCache, search_circuit
from repro.robust import FaultInjected
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit


@pytest.fixture(scope="module")
def adder():
    circuit = map_circuit(get_case("fa1").network())
    stats = ScenarioA(seed=3).input_stats(circuit.inputs)
    return circuit, stats


def canonical(result):
    return dumps_artifact(strip_timing(result.to_artifact()))


PORTFOLIO = dict(strategy="anneal", restarts=3, jobs=2, anneal_trials=40)


class TestPortfolioRecovery:
    def test_killed_worker_retried_byte_identical(self, adder, tmp_path,
                                                  monkeypatch):
        """A SIGKILLed restart is requeued; the artifact doesn't change."""
        circuit, stats = adder
        base = canonical(search_circuit(circuit, stats, seed=1, **PORTFOLIO))
        monkeypatch.setenv("REPRO_FAULTS", "kill-restart=1")
        monkeypatch.setenv("REPRO_FAULTS_STATE", str(tmp_path))
        recovered = search_circuit(circuit, stats, seed=1, **PORTFOLIO)
        assert canonical(recovered) == base
        assert not recovered.partial

    def test_persistent_crash_yields_partial(self, adder, monkeypatch):
        """Retries exhausted: merge what completed, flag partial."""
        circuit, stats = adder
        monkeypatch.setenv("REPRO_FAULTS", "crash-restart=1")
        result = search_circuit(circuit, stats, seed=1, worker_retries=1,
                                **PORTFOLIO)
        assert result.partial and not result.interrupted
        assert [f["index"] for f in result.failures] == [1]
        assert "FaultInjected" in result.failures[0]["error"]
        artifact = result.to_artifact()
        assert artifact["partial"] is True
        assert artifact["portfolio"]["failed"][0]["index"] == 1
        # The surviving restarts still produced a best state.
        assert result.power_after <= result.power_before

    def test_clean_artifact_has_no_partial_key(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats, seed=1, **PORTFOLIO)
        artifact = result.to_artifact()
        assert "partial" not in artifact
        assert "failed" not in artifact["portfolio"]

    def test_all_restarts_lost_raises(self, adder, monkeypatch):
        circuit, stats = adder
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "crash-restart=0; crash-restart=1; crash-restart=2")
        with pytest.raises(RuntimeError, match="no restarts completed"):
            search_circuit(circuit, stats, seed=1, worker_retries=0,
                           **PORTFOLIO)


class TestCompiledFallback:
    def test_kernel_failure_falls_back_to_object_path(self, adder,
                                                      monkeypatch):
        circuit, stats = adder
        reference = StatsCache(circuit, stats, compiled=False).total_power()
        monkeypatch.setenv("REPRO_FAULTS", "raise-kernel=1")
        from repro.obs.metrics import REGISTRY

        fallbacks = REGISTRY.counter("robust.fallback")
        before = fallbacks.value
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cache = StatsCache(circuit, stats, compiled=True)
            power = cache.total_power()
        assert power == reference  # bit-identical degradation
        assert fallbacks.value == before + 1
        assert any("falling back" in str(w.message) for w in caught)
        # The fallback latches: later refreshes go straight to the
        # object path, one warning per cache.
        cache.total_power()
        assert fallbacks.value == before + 1

    def test_strict_mode_raises(self, adder, monkeypatch):
        circuit, stats = adder
        monkeypatch.setenv("REPRO_FAULTS", "raise-kernel=1")
        monkeypatch.setenv("REPRO_ROBUST_STRICT", "1")
        with pytest.raises(FaultInjected):
            StatsCache(circuit, stats, compiled=True).total_power()


class TestBenchRecovery:
    CASES = ["fa1", "c17"]

    def test_error_row_instead_of_abort(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash-case=fa1")
        artifact = run_suite(cases=self.CASES, scenarios=("A",), jobs=1,
                             seed=0, retries=0)
        rows = artifact["results"]
        assert [r["status"] for r in rows] == ["error", "ok"]
        assert "FaultInjected" in rows[0]["error"]
        assert "partial" not in artifact  # the sweep itself completed

    def test_timeout_row(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "sleep-case=fa1:600")
        artifact = run_suite(cases=self.CASES, scenarios=("A",), jobs=1,
                             seed=0, retries=0, case_timeout_s=2.0)
        rows = artifact["results"]
        assert rows[0]["status"] == "timeout"
        assert rows[1]["status"] == "ok"

    def test_killed_case_retried_byte_identical(self, tmp_path, monkeypatch):
        base = run_suite(cases=self.CASES, scenarios=("A",), jobs=2, seed=0)
        monkeypatch.setenv("REPRO_FAULTS", "kill-case=fa1")
        monkeypatch.setenv("REPRO_FAULTS_STATE", str(tmp_path))
        recovered = run_suite(cases=self.CASES, scenarios=("A",), jobs=2,
                              seed=0)
        assert dumps_artifact(strip_timing(recovered)) == \
            dumps_artifact(strip_timing(base))


class TestInterruptedSearch:
    def test_sigterm_mid_search_yields_partial(self, adder, monkeypatch):
        """The sigterm-search fault stops the run at a chosen step; the
        result is the best-so-far state flagged partial (the CLI routes
        SIGTERM through KeyboardInterrupt the same way)."""
        circuit, stats = adder
        previous = signal.signal(
            signal.SIGTERM,
            lambda signum, frame: (_ for _ in ()).throw(KeyboardInterrupt))
        try:
            monkeypatch.setenv("REPRO_FAULTS", "sigterm-search=2")
            result = search_circuit(circuit, stats, seed=0,
                                    strategy="greedy")
        finally:
            signal.signal(signal.SIGTERM, previous)
        assert result.partial and result.interrupted
        assert result.to_artifact()["partial"] is True
        assert len(result.accepted) <= 2
