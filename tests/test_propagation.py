"""Tests for probability and transition-density propagation engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.netlist import Circuit
from repro.gates.library import default_library
from repro.stochastic.density import exact_stats, local_stats, propagate_stats
from repro.stochastic.probability import (
    build_global_bdds,
    exact_probabilities,
    local_probabilities,
)
from repro.stochastic.signal import SignalStats

LIB = default_library()


def inverter_chain(length=4):
    c = Circuit("chain", LIB)
    c.add_input("x")
    prev = "x"
    for i in range(length):
        c.add_gate(f"g{i}", "inv", {"a": prev}, f"n{i}")
        prev = f"n{i}"
    c.add_output(prev)
    return c


def tree_circuit():
    """Fanout-free: local propagation must be exact."""
    c = Circuit("tree", LIB)
    for net in ("a", "b", "c", "d"):
        c.add_input(net)
    c.add_output("y")
    c.add_gate("g0", "nand2", {"a": "a", "b": "b"}, "n0")
    c.add_gate("g1", "nor2", {"a": "c", "b": "d"}, "n1")
    c.add_gate("g2", "nand2", {"a": "n0", "b": "n1"}, "y")
    return c


def reconvergent_circuit():
    """z = nand(a, b); y = nand(z, z) — reconvergent fanout of z."""
    c = Circuit("reconv", LIB)
    c.add_input("a")
    c.add_input("b")
    c.add_output("y")
    c.add_gate("g0", "nand2", {"a": "a", "b": "b"}, "z")
    c.add_gate("g1", "nand2", {"a": "z", "b": "z"}, "y")
    return c


class TestLocalProbabilities:
    def test_inverter_chain_alternates(self):
        c = inverter_chain(3)
        probs = local_probabilities(c, {"x": 0.2})
        assert probs["n0"] == pytest.approx(0.8)
        assert probs["n1"] == pytest.approx(0.2)
        assert probs["n2"] == pytest.approx(0.8)

    def test_nand_probability(self):
        c = tree_circuit()
        probs = local_probabilities(c, {"a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5})
        assert probs["n0"] == pytest.approx(0.75)   # !(ab)
        assert probs["n1"] == pytest.approx(0.25)   # !(c|d)
        assert probs["y"] == pytest.approx(1 - 0.75 * 0.25)

    def test_out_of_range_rejected(self):
        c = inverter_chain(1)
        with pytest.raises(ValueError):
            local_probabilities(c, {"x": 1.2})


class TestExactProbabilities:
    def test_matches_local_on_tree(self):
        c = tree_circuit()
        inputs = {"a": 0.3, "b": 0.6, "c": 0.2, "d": 0.9}
        local = local_probabilities(c, inputs)
        exact = exact_probabilities(c, inputs)
        for net in c.nets():
            assert local[net] == pytest.approx(exact[net], abs=1e-12)

    def test_reconvergence_differs(self):
        c = reconvergent_circuit()
        inputs = {"a": 0.5, "b": 0.5}
        local = local_probabilities(c, inputs)
        exact = exact_probabilities(c, inputs)
        # y = !(z & z) = !z = a & b: exact P = 0.25.
        assert exact["y"] == pytest.approx(0.25)
        # Local treats the two z pins as independent: 1 - 0.75^2.
        assert local["y"] == pytest.approx(1 - 0.75 * 0.75)

    def test_global_bdd_functions(self):
        c = reconvergent_circuit()
        _, funcs = build_global_bdds(c)
        assert funcs["y"].evaluate({"a": True, "b": True})
        assert not funcs["y"].evaluate({"a": True, "b": False})

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=20, deadline=None)
    def test_exact_y_equals_ab(self, pa, pb):
        c = reconvergent_circuit()
        exact = exact_probabilities(c, {"a": pa, "b": pb})
        assert exact["y"] == pytest.approx(pa * pb, abs=1e-12)


class TestDensityPropagation:
    def test_inverter_chain_density_preserved(self):
        c = inverter_chain(4)
        stats = local_stats(c, {"x": SignalStats(0.5, 42.0)})
        for i in range(4):
            assert stats[f"n{i}"].density == pytest.approx(42.0)

    def test_nand_density(self):
        c = tree_circuit()
        inputs = {n: SignalStats(0.5, 100.0) for n in c.inputs}
        stats = local_stats(c, inputs)
        # D(n0) = P(b)*Da + P(a)*Db = 100.
        assert stats["n0"].density == pytest.approx(100.0)

    def test_constant_inputs_propagate_zero_density(self):
        c = tree_circuit()
        inputs = {n: SignalStats.constant(True) for n in c.inputs}
        stats = local_stats(c, inputs)
        assert stats["y"].density == 0.0
        assert stats["y"].probability in (0.0, 1.0)

    def test_exact_vs_local_on_tree(self):
        c = tree_circuit()
        inputs = {
            "a": SignalStats(0.3, 10.0),
            "b": SignalStats(0.7, 20.0),
            "c": SignalStats(0.4, 5.0),
            "d": SignalStats(0.6, 40.0),
        }
        local = local_stats(c, inputs)
        exact = exact_stats(c, inputs)
        for net in c.nets():
            assert local[net].probability == pytest.approx(
                exact[net].probability, abs=1e-9
            )
            assert local[net].density == pytest.approx(exact[net].density, rel=1e-9)

    def test_exact_reconvergence_density(self):
        c = reconvergent_circuit()
        inputs = {"a": SignalStats(0.5, 10.0), "b": SignalStats(0.5, 10.0)}
        exact = exact_stats(c, inputs)
        # y = a&b: P(dy/da) = P(b) = 0.5 -> D = 0.5*10 + 0.5*10.
        assert exact["y"].density == pytest.approx(10.0)

    def test_propagate_stats_dispatch(self):
        c = inverter_chain(1)
        stats = {"x": SignalStats(0.5, 10.0)}
        assert propagate_stats(c, stats, "local")["n0"].density == pytest.approx(10.0)
        assert propagate_stats(c, stats, "exact")["n0"].density == pytest.approx(10.0)
        with pytest.raises(ValueError):
            propagate_stats(c, stats, "bogus")
        with pytest.raises(KeyError):
            propagate_stats(c, {}, "local")

    def test_probability_clamped_for_switching_signal(self):
        """A switching net's probability is kept strictly inside (0, 1)."""
        c = Circuit("clamp", LIB)
        c.add_input("a")
        c.add_input("b")
        c.add_output("y")
        c.add_gate("g0", "nor2", {"a": "a", "b": "b"}, "y")
        stats = {
            "a": SignalStats(1.0 - 1e-15, 0.0),
            "b": SignalStats(0.5, 100.0),
        }
        result = local_stats(c, stats)
        assert 0.0 < result["y"].probability < 1.0 or result["y"].density == 0.0
