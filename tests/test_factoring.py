"""Tests for algebraic division, kernel extraction and factoring."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.factoring import (
    cover_from_patterns,
    divide,
    factor,
    factor_to_expr,
    is_cube_free,
    kernels,
)
from repro.synth.sop import cover_to_expr


def cover(*cubes):
    """Cover from 'ab', "a'b" style strings: lowercase var, ' = negated."""
    result = set()
    for text in cubes:
        literals = set()
        i = 0
        while i < len(text):
            name = text[i]
            if i + 1 < len(text) and text[i + 1] == "'":
                literals.add((name, False))
                i += 2
            else:
                literals.add((name, True))
                i += 1
        result.add(frozenset(literals))
    return frozenset(result)


class TestDivide:
    def test_textbook_division(self):
        # f = ac + ad + bc + bd + e ; divisor = a + b
        f = cover("ac", "ad", "bc", "bd", "e")
        d = cover("a", "b")
        quotient, remainder = divide(f, d)
        assert quotient == cover("c", "d")
        assert remainder == cover("e")

    def test_no_quotient(self):
        f = cover("ab")
        d = cover("c")
        quotient, remainder = divide(f, d)
        assert quotient == frozenset()
        assert remainder == f

    def test_reconstruction(self):
        f = cover("ac", "ad", "bc", "bd", "e")
        d = cover("a", "b")
        quotient, remainder = divide(f, d)
        rebuilt = {
            frozenset(q | dc) for q in quotient for dc in d
        } | set(remainder)
        assert frozenset(rebuilt) == f

    def test_empty_divisor(self):
        with pytest.raises(ValueError):
            divide(cover("a"), frozenset())


class TestKernels:
    def test_textbook_kernels(self):
        # f = adf + aef + bdf + bef + cdf + cef + g (classic SIS example)
        f = cover("adf", "aef", "bdf", "bef", "cdf", "cef", "g")
        def key(k):
            return tuple(sorted(tuple(sorted(c)) for c in k))

        ks = {key(k) for _, k in kernels(f)}
        # a+b+c and d+e are kernels.
        abc = key(cover("a", "b", "c"))
        de = key(cover("d", "e"))
        assert abc in ks
        assert de in ks

    def test_cube_free_cover_is_its_own_kernel(self):
        f = cover("ab", "c")
        assert is_cube_free(f)
        assert any(k == f for _, k in kernels(f))

    def test_single_cube_has_no_nontrivial_kernels(self):
        f = cover("abc")
        assert all(len(k) <= 1 for _, k in kernels(f))

    def test_deterministic(self):
        f = cover("ac", "ad", "bc", "bd")
        assert kernels(f) == kernels(f)


class TestFactor:
    def _assert_equivalent(self, patterns, inputs):
        flat = cover_to_expr(patterns, inputs)
        factored = factor_to_expr(patterns, inputs)
        for vector in itertools.product([False, True], repeat=len(inputs)):
            env = dict(zip(inputs, vector))
            assert flat.evaluate(env) == factored.evaluate(env), env

    def test_factoring_is_equivalent(self):
        self._assert_equivalent(["11--", "1-1-", "-111"], ("a", "b", "c", "d"))

    def test_factoring_shares_literals(self):
        # f = ac + ad + bc + bd -> (a+b)(c+d): 4 literals instead of 8.
        expr = factor(cover("ac", "ad", "bc", "bd"))
        assert str(expr).count("a") == 1
        assert str(expr).count("c") == 1

    def test_empty(self):
        assert factor(frozenset()).evaluate({}) is False

    @given(st.sets(
        st.text(alphabet="01-", min_size=4, max_size=4), min_size=1, max_size=6
    ).filter(lambda s: any(p != "----" for p in s)))
    @settings(max_examples=60, deadline=None)
    def test_random_covers_factor_equivalently(self, patterns):
        inputs = ("a", "b", "c", "d")
        patterns = sorted(patterns)
        self._assert_equivalent(patterns, inputs)
