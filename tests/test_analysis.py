"""Tests for report formatting, statistics and the experiment drivers."""

import pytest

from repro.analysis.experiments import (
    run_adder_activity,
    run_table1,
    run_table2,
    run_table3_case,
)
from repro.analysis.report import format_percent, format_si, format_table
from repro.analysis.stats import geomean, mean, relative_increase, relative_reduction
from repro.bench.suite import get_case


class TestFormatting:
    def test_format_percent(self):
        assert format_percent(0.123) == "12.3"
        assert format_percent(-0.05) == "-5.0"
        assert format_percent(0.0) == "0.0"

    def test_format_si(self):
        assert format_si(1.5e-9, "W") == "1.50nW"
        assert format_si(2.3e-6, "s") == "2.30us"
        assert format_si(0.0, "W") == "0W"
        assert format_si(1.0) == "1.00"

    def test_format_table_alignment(self):
        text = format_table(("Name", "Value"), [("a", 1), ("bb", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        assert lines[1].startswith("-")
        assert len(lines) == 4

    def test_format_table_footer_and_title(self):
        text = format_table(("N", "V"), [("a", 1)], title="T", footer=("sum", 1))
        assert text.splitlines()[0] == "T"
        assert "sum" in text.splitlines()[-1]


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([0.0, 1.0])

    def test_relative_reduction(self):
        assert relative_reduction(10.0, 8.0) == pytest.approx(0.2)
        assert relative_reduction(0.0, 5.0) == 0.0

    def test_relative_increase(self):
        assert relative_increase(10.0, 11.0) == pytest.approx(0.1)
        assert relative_increase(0.0, 1.0) == 0.0


class TestTable1Driver:
    def test_two_cases_with_moving_optimum(self):
        rows = run_table1()
        assert len(rows) == 2
        assert rows[0].best_index != rows[1].best_index
        for row in rows:
            assert len(row.relative_powers) == 4
            assert max(row.relative_powers) == pytest.approx(1.0)
            assert 0.0 < row.reduction_vs_worst < 0.5


class TestTable2Driver:
    def test_counts(self):
        table = dict(run_table2())
        assert table["aoi222"] == 48
        assert table["inv"] == 1
        assert len(table) == 17


class TestTable3Driver:
    def test_single_case_scenario_a(self):
        row = run_table3_case(get_case("fa1"), "A", seed=1,
                              target_transitions=60.0)
        assert row.scenario == "A"
        assert row.gates > 0
        assert 0.0 <= row.model_reduction < 0.5
        assert -0.3 < row.sim_reduction < 0.5
        assert row.model_power_best > 0.0
        assert row.sim_power_best > 0.0

    def test_single_case_scenario_b(self):
        row = run_table3_case(get_case("c17"), "B", seed=1, cycles=100)
        assert row.scenario == "B"
        assert row.model_reduction >= 0.0

    def test_bad_scenario(self):
        with pytest.raises(ValueError):
            run_table3_case(get_case("c17"), "C")


class TestAdderActivityDriver:
    def test_monotone_carry_chain(self):
        profile = run_adder_activity(4)
        carries = [profile[f"c{i}"] for i in range(4)]
        assert all(c > profile["operand"] for c in carries)
        for lo, hi in zip(carries, carries[1:]):
            assert hi >= lo - 1e-9
