"""Tests for the incremental (P, D) engine (`repro.incremental`)."""

import pytest

from repro.bench.suite import get_case
from repro.circuit.netlist import CircuitError, SetConfig, SetTemplate
from repro.circuit.topology import (
    FanoutIndex,
    topological_gates,
    transitive_fanout,
)
from repro.core.optimizer import circuit_power, optimize_circuit
from repro.incremental import (
    AnalyticBackend,
    SampledBackend,
    StatsCache,
    WhatIf,
    make_backend,
)
from repro.incremental.eco import InputStatsEdit, resolve_edit, script_edit_label
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import propagate_stats
from repro.stochastic.signal import SignalStats
from repro.synth.mapper import map_circuit


@pytest.fixture(scope="module")
def _adder_master():
    circuit = map_circuit(get_case("rca4").network())
    stats = ScenarioA(seed=3).input_stats(circuit.inputs)
    return circuit, stats


@pytest.fixture()
def adder(_adder_master):
    # Tests edit the circuit in place; hand each one a private copy of
    # the module-scoped mapping (mapping is the expensive part).
    circuit, stats = _adder_master
    return circuit.copy(), stats


def two_pin_gate(circuit, index=0):
    gates = [g for g in circuit.gates if len(g.template.pins) == 2]
    return gates[index]


def other_two_pin_template(gate):
    return "nor2" if gate.template.name != "nor2" else "nand2"


# ----------------------------------------------------------------------
# Fanout index / cones
# ----------------------------------------------------------------------
class TestFanoutIndex:
    def test_sinks_match_linear_scan(self, adder):
        circuit, _ = adder
        index = FanoutIndex(circuit)
        for net in circuit.nets():
            expected = {(g.name, pin) for g, pin in circuit.fanout(net)}
            assert {(g.name, pin) for g, pin in index.sinks(net)} == expected

    def test_cone_is_reflexive_and_transitive(self, adder):
        circuit, _ = adder
        index = FanoutIndex(circuit)
        for gate in circuit.gates:
            cone = index.cone_from_gates([gate.name])
            assert gate.name in cone
            for sink in index.gate_sinks(gate.name):
                assert sink.name in cone
                assert index.cone_from_gates([sink.name]) <= cone

    def test_transitive_fanout_topological(self, adder):
        circuit, _ = adder
        order = {g.name: i for i, g in enumerate(topological_gates(circuit))}
        net = circuit.inputs[0]
        cone = transitive_fanout(circuit, net)
        assert cone, "an adder input reaches at least one gate"
        positions = [order[g.name] for g in cone]
        assert positions == sorted(positions)

    def test_output_gate_cone_is_singleton(self, adder):
        circuit, _ = adder
        index = FanoutIndex(circuit)
        # A gate driving only a primary output has no gate sinks.
        lonely = [
            g for g in circuit.gates
            if g.output in circuit.outputs and not index.gate_sinks(g.name)
        ]
        assert lonely
        assert index.cone_from_gates([lonely[0].name]) == {lonely[0].name}


# ----------------------------------------------------------------------
# Circuit edit API
# ----------------------------------------------------------------------
class TestEditAPI:
    def test_set_config_inverse_roundtrips(self, adder):
        circuit, _ = adder
        gate = circuit.gates[0]
        original = gate.config
        inverse = circuit.set_config(gate.name, gate.template.configurations()[-1])
        assert inverse == SetConfig(gate.name, original)
        circuit.apply_edit(inverse)
        assert gate.config == original

    def test_set_template_rebinds_and_roundtrips(self, adder):
        circuit, _ = adder
        gate = two_pin_gate(circuit)
        nets_before = dict(gate.pin_nets)
        name_before = gate.template.name
        inverse = circuit.set_template(gate.name, other_two_pin_template(gate))
        assert gate.template.name != name_before
        assert list(gate.pin_nets.values()) == list(nets_before.values())
        circuit.apply_edit(inverse)
        assert gate.template.name == name_before
        assert gate.pin_nets == nets_before

    def test_template_arity_mismatch_rejected(self, adder):
        circuit, _ = adder
        gate = two_pin_gate(circuit)
        with pytest.raises(CircuitError):
            circuit.set_template(gate.name, "inv")

    def test_unknown_edit_rejected(self, adder):
        circuit, _ = adder
        with pytest.raises(TypeError):
            circuit.apply_edit("not an edit")

    def test_listeners_fire_and_detach(self, adder):
        circuit, _ = adder
        seen = []
        circuit.add_edit_listener(lambda name, kind: seen.append((name, kind)))
        gate = circuit.gates[0]
        circuit.set_config(gate.name, None)
        assert seen == [(gate.name, "config")]
        detached = lambda name, kind: seen.append(("detached", kind))  # noqa: E731
        circuit.add_edit_listener(detached)
        circuit.remove_edit_listener(detached)
        circuit.set_config(gate.name, None)
        assert seen == [(gate.name, "config"), (gate.name, "config")]

    def test_copy_does_not_share_listeners(self, adder):
        circuit, _ = adder
        seen = []
        circuit.add_edit_listener(lambda name, kind: seen.append(name))
        clone = circuit.copy()
        clone.set_config(clone.gates[0].name, None)
        assert seen == []


# ----------------------------------------------------------------------
# StatsCache — dirty protocol and equivalence
# ----------------------------------------------------------------------
class TestStatsCacheAnalytic:
    def test_initial_full_propagation(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            assert cache.stats() == propagate_stats(circuit, stats, method="local")

    def test_dirty_set_is_exactly_the_cone(self, adder):
        circuit, stats = adder
        index = FanoutIndex(circuit)
        with StatsCache(circuit, stats) as cache:
            gate = circuit.gates[5]
            circuit.set_config(gate.name, gate.template.configurations()[-1])
            assert cache.dirty_gates == index.cone_from_gates([gate.name])
            cache.refresh()
            assert cache.dirty_gates == frozenset()

    def test_input_edit_dirties_input_cone(self, adder):
        circuit, stats = adder
        index = FanoutIndex(circuit)
        with StatsCache(circuit, stats) as cache:
            net = circuit.inputs[2]
            cache.set_input_stats(net, SignalStats(0.25, 1.0e5))
            assert cache.dirty_gates == index.cone_from_nets([net])

    def test_equal_input_stats_edit_is_a_noop(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            net = circuit.inputs[0]
            cache.set_input_stats(net, stats[net])
            assert cache.dirty_gates == frozenset()

    def test_reorder_keeps_stats_bitidentical(self, adder):
        # The output function does not depend on the ordering, so the
        # recomputed cone must land on exactly the same statistics.
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            before = dict(cache.stats())
            gate = circuit.gates[7]
            circuit.set_config(gate.name, gate.template.configurations()[-1])
            assert cache.stats() == before

    def test_edit_sequence_matches_from_scratch(self, adder):
        circuit, stats = adder
        current = dict(stats)
        with StatsCache(circuit, stats) as cache:
            gate = circuit.gates[1]
            circuit.set_config(gate.name, gate.template.configurations()[-1])
            assert cache.stats() == propagate_stats(circuit, current, "local")

            swap = two_pin_gate(circuit, 1)
            circuit.set_template(swap.name, other_two_pin_template(swap))
            assert cache.stats() == propagate_stats(circuit, current, "local")

            net = circuit.inputs[1]
            current[net] = SignalStats(0.8, 3.0e5)
            cache.set_input_stats(net, current[net])
            assert cache.stats() == propagate_stats(circuit, current, "local")

    def test_power_matches_circuit_power(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            gate = two_pin_gate(circuit)
            circuit.set_template(gate.name, other_two_pin_template(gate))
            report = cache.power()
            reference = circuit_power(circuit, stats)
            assert report.total == pytest.approx(reference.total, rel=1e-12)
            for name, gate_report in reference.by_gate.items():
                assert report.by_gate[name].total == pytest.approx(
                    gate_report.total, rel=1e-12
                )

    def test_refresh_reports_recomputed_nets(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            cache.refresh()
            gate = circuit.gates[5]
            circuit.set_config(gate.name, gate.template.configurations()[-1])
            updated = cache.refresh()
            cone = FanoutIndex(circuit).cone_from_gates([gate.name])
            assert set(updated) == {circuit.gate(n).output for n in cone}

    def test_missing_input_stats_rejected(self, adder):
        circuit, stats = adder
        partial = dict(stats)
        partial.pop(circuit.inputs[0])
        with pytest.raises(KeyError):
            StatsCache(circuit, partial)

    def test_set_input_stats_rejects_internal_net(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            with pytest.raises(KeyError):
                cache.set_input_stats(circuit.gates[0].output, SignalStats(0.5, 1.0))


class TestStatsCacheSampled:
    LANES, STEPS, SEED = 128, 24, 11

    def fresh(self, circuit, input_stats, dt):
        return SampledBackend(lanes=self.LANES, steps=self.STEPS, dt=dt,
                              seed=self.SEED).full(circuit, input_stats)

    def test_edits_bitidentical_to_full_resample(self, adder):
        circuit, stats = adder
        dwells = [
            d for s in stats.values()
            for d in (s.mean_high_dwell, s.mean_low_dwell)
        ]
        dt = 0.2 * min(dwells)
        current = dict(stats)
        with StatsCache(circuit, stats, backend="sampled", lanes=self.LANES,
                        steps=self.STEPS, dt=dt, seed=self.SEED) as cache:
            assert cache.stats() == self.fresh(circuit, current, dt)

            gate = circuit.gates[4]
            circuit.set_config(gate.name, gate.template.configurations()[-1])
            assert cache.stats() == self.fresh(circuit, current, dt)

            swap = two_pin_gate(circuit, 2)
            circuit.set_template(swap.name, other_two_pin_template(swap))
            assert cache.stats() == self.fresh(circuit, current, dt)

            net = circuit.inputs[3]
            current[net] = SignalStats(0.6, current[net].density * 1.5)
            cache.set_input_stats(net, current[net])
            assert cache.stats() == self.fresh(circuit, current, dt)

    def test_update_before_full_rejected(self, adder):
        circuit, stats = adder
        backend = SampledBackend(lanes=8, steps=4, dt=1.0)
        with pytest.raises(RuntimeError):
            backend.update(circuit, [], stats, frozenset(), {})

    def test_dt_too_coarse_rejected(self, adder):
        circuit, stats = adder
        with pytest.raises(ValueError):
            StatsCache(circuit, stats, backend="sampled", lanes=8, steps=4,
                       dt=1.0e9)

    def test_substreams_drawn_once_per_distinct_stats(self, adder,
                                                      monkeypatch):
        # The inner-loop fix: toggling an input's statistics back and
        # forth (the WhatIf apply/rollback pattern) must not redraw a
        # stream the run has already materialised — and the cached
        # words must keep the bit-identity contract intact.
        import repro.incremental.backends as backends_module

        calls = []
        real = backends_module.markov_stream_words

        def counting(stats, lanes, steps, dt, rng):
            calls.append(stats)
            return real(stats, lanes, steps, dt, rng)

        monkeypatch.setattr(backends_module, "markov_stream_words", counting)
        circuit, stats = adder
        dwells = [
            d for s in stats.values()
            for d in (s.mean_high_dwell, s.mean_low_dwell)
        ]
        dt = 0.2 * min(dwells)
        current = dict(stats)
        with StatsCache(circuit, stats, backend="sampled", lanes=self.LANES,
                        steps=self.STEPS, dt=dt, seed=self.SEED) as cache:
            cache.stats()
            drawn_at_full = len(calls)
            assert drawn_at_full == len(circuit.inputs)
            net = circuit.inputs[0]
            edited = SignalStats(0.6, current[net].density)
            for _ in range(3):  # apply/rollback, three times over
                cache.set_input_stats(net, edited)
                cache.stats()
                cache.set_input_stats(net, current[net])
                cache.stats()
            # one new draw for the edited stats; every rollback (and
            # re-apply) comes from the cache
            assert len(calls) == drawn_at_full + 1
            current[net] = edited
            cache.set_input_stats(net, edited)
            assert cache.stats() == self.fresh(circuit, current, dt)


class TestMakeBackend:
    def test_names_resolve(self):
        assert isinstance(make_backend("analytic"), AnalyticBackend)
        assert isinstance(make_backend("local"), AnalyticBackend)
        assert isinstance(make_backend("sampled", lanes=8), SampledBackend)

    def test_instance_passthrough(self):
        backend = SampledBackend(lanes=8)
        assert make_backend(backend) is backend
        with pytest.raises(TypeError):
            make_backend(backend, lanes=16)

    def test_rejections(self):
        with pytest.raises(ValueError):
            make_backend("exact")
        with pytest.raises(TypeError):
            make_backend("analytic", lanes=8)


# ----------------------------------------------------------------------
# WhatIf — trial edits, delta power, rollback
# ----------------------------------------------------------------------
class TestWhatIf:
    def test_rollback_restores_everything_bitidentical(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            baseline_stats = dict(cache.stats())
            baseline_power = cache.total_power()
            gate = circuit.gates[2]
            swap = two_pin_gate(circuit, 3)
            with WhatIf(cache) as trial:
                trial.apply(SetConfig(gate.name, gate.template.configurations()[-1]))
                trial.apply(SetTemplate(swap.name, other_two_pin_template(swap)))
                trial.apply(InputStatsEdit(circuit.inputs[0], SignalStats(0.9, 2.0e5)))
                assert trial.delta_power() != 0.0
            assert cache.stats() == baseline_stats
            assert cache.total_power() == baseline_power

    def test_commit_keeps_edits(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            gate = two_pin_gate(circuit)
            target = other_two_pin_template(gate)
            with WhatIf(cache) as trial:
                trial.apply(SetTemplate(gate.name, target))
                trial.commit()
            assert gate.template.name == target
            assert cache.stats() == propagate_stats(circuit, stats, "local")

    def test_delta_power_matches_recompute(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            before = circuit_power(circuit, stats).total
            gate = two_pin_gate(circuit, 1)
            with WhatIf(cache) as trial:
                trial.apply(SetTemplate(gate.name, other_two_pin_template(gate)))
                after = circuit_power(circuit, stats).total
                assert trial.delta_power() == pytest.approx(after - before, rel=1e-12)

    def test_rollback_runs_when_the_trial_body_raises(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            baseline_stats = dict(cache.stats())
            baseline_power = cache.total_power()
            gate = circuit.gates[3]
            with pytest.raises(RuntimeError, match="boom"):
                with WhatIf(cache) as trial:
                    trial.apply(
                        SetConfig(gate.name, gate.template.configurations()[-1])
                    )
                    raise RuntimeError("boom")
            assert cache.stats() == baseline_stats
            assert cache.total_power() == baseline_power

    def test_raising_body_aborts_even_after_commit(self, adder):
        # commit() marks intent, but a body that then raises never ran
        # to completion — the partial trial must not leak.
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            gate = circuit.gates[3]
            original = gate.effective_config().key()
            baseline_power = cache.total_power()
            with pytest.raises(RuntimeError, match="after commit"):
                with WhatIf(cache) as trial:
                    trial.apply(
                        SetConfig(gate.name, gate.template.configurations()[-1])
                    )
                    trial.commit()
                    raise RuntimeError("after commit")
            assert gate.effective_config().key() == original
            assert cache.total_power() == baseline_power

    def test_nested_trials_unwind_lifo(self, adder):
        # An uncommitted outer trial rolls back its own edits AND an
        # inner committed trial's (the inner commit is relative to the
        # enclosing trial, not to the world).
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            baseline_stats = dict(cache.stats())
            baseline_power = cache.total_power()
            outer_gate, inner_gate = circuit.gates[2], two_pin_gate(circuit, 1)
            target_template = other_two_pin_template(inner_gate)
            with WhatIf(cache) as outer:
                outer.apply(SetConfig(
                    outer_gate.name, outer_gate.template.configurations()[-1]
                ))
                with WhatIf(cache) as inner:
                    inner.apply(SetTemplate(inner_gate.name, target_template))
                    inner.commit()
                # inner edits survive while the outer trial is open
                assert inner_gate.template.name == target_template
            assert cache.stats() == baseline_stats
            assert cache.total_power() == baseline_power

    def test_nested_commit_commit_keeps_both(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            outer_gate, inner_gate = circuit.gates[2], two_pin_gate(circuit, 1)
            target_config = outer_gate.template.configurations()[-1]
            target_template = other_two_pin_template(inner_gate)
            with WhatIf(cache) as outer:
                outer.apply(SetConfig(outer_gate.name, target_config))
                with WhatIf(cache) as inner:
                    inner.apply(SetTemplate(inner_gate.name, target_template))
                    inner.commit()
                outer.commit()
            assert outer_gate.effective_config().key() == target_config.key()
            assert inner_gate.template.name == target_template
            assert cache.stats() == propagate_stats(circuit, stats, "local")

    def test_out_of_order_unwinding_rejected(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            outer = WhatIf(cache).__enter__()
            inner = WhatIf(cache).__enter__()
            with pytest.raises(RuntimeError, match="LIFO"):
                outer.__exit__(None, None, None)
            # proper order still unwinds cleanly afterwards
            inner.__exit__(None, None, None)
            outer.__exit__(None, None, None)
            assert cache.trial_stack == []

    def test_rollback_is_cone_sized(self, adder):
        circuit, stats = adder
        with StatsCache(circuit, stats) as cache:
            cache.refresh()
            done = cache.gates_repropagated
            gate = circuit.gates[-1]
            cone = len(FanoutIndex(circuit).cone_from_gates([gate.name]))
            with WhatIf(cache) as trial:
                trial.apply(SetConfig(gate.name, None))
                trial.power()
            cache.refresh()
            assert cache.gates_repropagated - done == 2 * cone


# ----------------------------------------------------------------------
# Edit scripts (the `repro eco` vocabulary)
# ----------------------------------------------------------------------
class TestEditScripts:
    def test_reorder_resolution(self, adder):
        circuit, _ = adder
        gate = circuit.gates[0]
        edit = resolve_edit(circuit, {"op": "reorder", "gate": gate.name,
                                      "config": 0})
        assert edit == SetConfig(gate.name, gate.template.configurations()[0])
        default = resolve_edit(circuit, {"op": "reorder", "gate": gate.name,
                                         "config": -1})
        assert default == SetConfig(gate.name, None)

    def test_reorder_index_out_of_range(self, adder):
        circuit, _ = adder
        gate = circuit.gates[0]
        with pytest.raises(ValueError):
            resolve_edit(circuit, {"op": "reorder", "gate": gate.name,
                                   "config": 10_000})

    def test_retemplate_and_input_stats_resolution(self, adder):
        circuit, _ = adder
        gate = two_pin_gate(circuit)
        edit = resolve_edit(circuit, {"op": "retemplate", "gate": gate.name,
                                      "template": "nor2"})
        assert edit == SetTemplate(gate.name, "nor2")
        stats_edit = resolve_edit(circuit, {
            "op": "input-stats", "net": "a0", "probability": 0.25,
            "density": 1.5e5,
        })
        assert stats_edit == InputStatsEdit("a0", SignalStats(0.25, 1.5e5))

    def test_unknown_op_rejected(self, adder):
        circuit, _ = adder
        with pytest.raises(ValueError):
            resolve_edit(circuit, {"op": "delete-gate", "gate": "g0"})

    def test_labels_are_readable(self, adder):
        circuit, _ = adder
        assert "reorder" in script_edit_label(SetConfig("g0", None))
        assert "nor2" in script_edit_label(SetTemplate("g0", "nor2"))
        assert "input-stats" in script_edit_label(
            InputStatsEdit("a", SignalStats(0.5, 1.0))
        )


# ----------------------------------------------------------------------
# Iterative re-optimisation
# ----------------------------------------------------------------------
class TestMultiPassOptimize:
    def test_single_pass_unchanged_default(self, adder):
        circuit, stats = adder
        result = optimize_circuit(circuit, stats)
        assert result.passes_run == 1

    def test_converges_to_fixed_point(self, adder):
        circuit, stats = adder
        result = optimize_circuit(circuit, stats, passes=10)
        assert result.passes_run < 10
        # Re-running on the converged circuit changes nothing.
        again = optimize_circuit(result.circuit, stats, passes=10)
        assert again.passes_run == 1
        assert [d.chosen.config.key() for d in again.decisions] == [
            d.chosen.config.key() for d in result.decisions
        ]

    def test_multipass_never_hurts_the_model_objective(self, adder):
        circuit, stats = adder
        one = optimize_circuit(circuit, stats, passes=1)
        many = optimize_circuit(circuit, stats, passes=10)
        assert many.power_after <= one.power_after * (1.0 + 1e-9)
        assert many.power_before == one.power_before

    def test_invalid_passes_rejected(self, adder):
        circuit, stats = adder
        with pytest.raises(ValueError):
            optimize_circuit(circuit, stats, passes=0)

    def test_later_passes_are_cone_sized(self, adder):
        # Pass 1 decides every gate; the cone-aware passes re-decide
        # only the worklist (fanin drivers of re-configured gates), so
        # total decisions stay well below passes_run full traversals.
        circuit, stats = adder
        result = optimize_circuit(circuit, stats, passes=10)
        assert result.passes_run > 1
        assert result.gates_decided > len(circuit)
        assert result.gates_decided < result.passes_run * len(circuit)

    def test_single_pass_decides_every_gate_once(self, adder):
        circuit, stats = adder
        result = optimize_circuit(circuit, stats)
        assert result.gates_decided == len(circuit)

    def test_cone_aware_matches_iterated_full_reoptimization(self, adder):
        # The worklist protocol must land on exactly the configuration
        # a naive "re-run the full single-pass optimiser to a fixed
        # point" loop finds: a gate with unchanged fanin statistics and
        # unchanged load re-decides identically, so skipping it is pure
        # savings, never a different answer.
        circuit, stats = adder
        cone = optimize_circuit(circuit, stats, passes=10)
        naive = optimize_circuit(circuit, stats, passes=1)
        for _ in range(10):
            again = optimize_circuit(naive.circuit, stats, passes=1)
            if [d.chosen.config.key() for d in again.decisions] == [
                d.chosen.config.key() for d in naive.decisions
            ]:
                break
            naive = again
        assert [d.chosen.config.key() for d in cone.decisions] == [
            d.chosen.config.key() for d in naive.decisions
        ]
        assert cone.power_after == pytest.approx(naive.power_after, rel=1e-12)

    def test_multipass_power_matches_reanalysis(self, adder):
        # power_after of a converged multipass run is settled-load
        # accounting — it must equal a from-scratch re-analysis of the
        # emitted netlist.
        circuit, stats = adder
        result = optimize_circuit(circuit, stats, passes=10)
        assert result.power_after == pytest.approx(
            circuit_power(result.circuit, stats).total, rel=1e-12
        )
