"""End-to-end integration tests: the whole paper flow on real circuits."""

import pytest

from repro.bench.suite import benchmark_suite, get_case
from repro.circuit.blif import parse_blif, parse_mapped_blif, write_mapped_blif
from repro.core.optimizer import circuit_power, optimize_circuit
from repro.core.power_model import GatePowerModel
from repro.gates.capacitance import TechParams
from repro.gates.library import default_library
from repro.sim.logicsim import check_equivalence
from repro.sim.stimulus import ScenarioA, ScenarioB
from repro.sim.switchsim import SwitchLevelSimulator
from repro.synth.mapper import map_circuit
from repro.timing.sta import circuit_delay

LIB = default_library()
TECH = TechParams()


@pytest.fixture(scope="module")
def mapped_rca4():
    network = get_case("rca4").network()
    return network, map_circuit(network)


class TestFullFlow:
    def test_map_optimize_simulate_scenario_a(self, mapped_rca4):
        network, circuit = mapped_rca4
        scenario = ScenarioA(seed=21)
        stats = scenario.input_stats(circuit.inputs)
        best = optimize_circuit(circuit, stats, objective="best")
        worst = optimize_circuit(circuit, stats, objective="worst")

        # Functions preserved through mapping and reordering.
        assert check_equivalence(network, best.circuit, samples=64)
        assert check_equivalence(network, worst.circuit, samples=64)

        # Model ordering respected.
        assert best.power_after < worst.power_after

        # Switch-level simulation agrees on the winner.
        stimulus = scenario.generate(circuit.inputs, duration=2.5e-4)
        p_best = SwitchLevelSimulator(best.circuit, TECH).run(stimulus).power
        p_worst = SwitchLevelSimulator(worst.circuit, TECH).run(stimulus).power
        assert p_best < p_worst

        # Savings are paper-sized (rca4, scenario A: ~10-15 %).
        model_saving = 1.0 - best.power_after / worst.power_after
        sim_saving = 1.0 - p_best / p_worst
        assert 0.03 < model_saving < 0.35
        assert 0.02 < sim_saving < 0.35

    def test_scenario_b_saves_less_than_a(self, mapped_rca4):
        _, circuit = mapped_rca4
        model = GatePowerModel(TECH)

        stats_a = ScenarioA(seed=5).input_stats(circuit.inputs)
        best_a = optimize_circuit(circuit, stats_a, model, objective="best")
        worst_a = optimize_circuit(circuit, stats_a, model, objective="worst")
        saving_a = 1.0 - best_a.power_after / worst_a.power_after

        stats_b = ScenarioB(seed=5).input_stats(circuit.inputs)
        best_b = optimize_circuit(circuit, stats_b, model, objective="best")
        worst_b = optimize_circuit(circuit, stats_b, model, objective="worst")
        saving_b = 1.0 - best_b.power_after / worst_b.power_after

        assert saving_b < saving_a

    def test_area_neutrality_through_whole_flow(self, mapped_rca4):
        _, circuit = mapped_rca4
        stats = ScenarioA(seed=1).input_stats(circuit.inputs)
        best = optimize_circuit(circuit, stats, objective="best")
        assert best.circuit.area() == circuit.area()
        assert best.circuit.gate_count_by_template() == circuit.gate_count_by_template()

    def test_mapped_blif_roundtrip_through_flow(self, mapped_rca4):
        network, circuit = mapped_rca4
        text = write_mapped_blif(circuit)
        back = parse_mapped_blif(text, LIB)
        assert check_equivalence(network, back, samples=32)

    def test_delay_constrained_flow(self, mapped_rca4):
        _, circuit = mapped_rca4
        stats = ScenarioA(seed=8).input_stats(circuit.inputs)
        constrained = optimize_circuit(
            circuit, stats, objective="delay-constrained"
        )
        assert circuit_delay(constrained.circuit, TECH) <= circuit_delay(
            circuit, TECH
        ) * (1 + 1e-9)
        assert constrained.power_after <= constrained.power_before + 1e-24


class TestModelSimulatorConsistency:
    """The model's absolute power must track the simulator within tens of %."""

    @pytest.mark.parametrize("name", ["c17", "fa1", "mux8"])
    def test_absolute_power_tracks_simulation(self, name):
        network = get_case(name).network()
        circuit = map_circuit(network)
        scenario = ScenarioA(seed=33)
        stats = scenario.input_stats(circuit.inputs)
        duration = 3000.0 / 1e6
        stimulus = scenario.generate(circuit.inputs, duration)
        sim = SwitchLevelSimulator(circuit, TECH).run(stimulus)
        model = circuit_power(circuit, stats)
        ratio = model.total / sim.power
        assert 0.5 < ratio < 2.0, f"{name}: model/sim ratio {ratio:.2f}"


class TestSuiteSmoke:
    @pytest.mark.parametrize("case", benchmark_suite("quick"),
                             ids=lambda c: c.name)
    def test_quick_suite_maps_and_optimizes(self, case):
        network = case.network()
        circuit = map_circuit(network)
        assert check_equivalence(network, circuit, samples=32)
        stats = ScenarioA(seed=0).input_stats(circuit.inputs)
        result = optimize_circuit(circuit, stats, objective="best")
        assert result.power_after <= result.power_before + 1e-24
        assert circuit_delay(result.circuit, TECH) > 0.0
