"""Tests for the benchmark circuit generators and the suite."""

import itertools

import numpy as np
import pytest

from repro.bench import generators as g
from repro.bench.suite import benchmark_suite, get_case
from repro.sim.logicsim import random_vectors


def _num(values, names):
    return sum((1 << i) for i, n in enumerate(names) if values[n])


class TestRippleCarryAdder:
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_adds_correctly(self, width):
        network = g.ripple_carry_adder(width)
        a_names = [f"a{i}" for i in range(width)]
        b_names = [f"b{i}" for i in range(width)]
        rng = np.random.default_rng(0)
        for vector in random_vectors(list(network.inputs), 30, rng):
            out = network.evaluate_outputs(vector)
            a = _num(vector, a_names)
            b = _num(vector, b_names)
            cin = int(vector["cin"])
            total = a + b + cin
            got = sum(
                (1 << i) for i in range(width) if out[f"s{i}"]
            ) + (1 << width) * int(out[f"c{width-1}"])
            assert got == total

    def test_without_cin(self):
        network = g.ripple_carry_adder(2, with_cin=False)
        assert "cin" not in network.inputs
        out = network.evaluate_outputs({"a0": True, "a1": True, "b0": True, "b1": True})
        # 3 + 3 = 6 = 110b
        assert (out["s0"], out["s1"], out["c1"]) == (False, True, True)

    def test_expose_carries(self):
        network = g.ripple_carry_adder(4, expose_carries=True)
        for i in range(4):
            assert f"c{i}" in network.outputs

    def test_bad_width(self):
        with pytest.raises(ValueError):
            g.ripple_carry_adder(0)


class TestArrayMultiplier:
    @pytest.mark.parametrize("width", [2, 3])
    def test_multiplies_correctly(self, width):
        network = g.array_multiplier(width)
        a_names = [f"a{i}" for i in range(width)]
        b_names = [f"b{i}" for i in range(width)]
        outputs = network.outputs
        for a in range(1 << width):
            for b in range(1 << width):
                vector = {}
                for i in range(width):
                    vector[f"a{i}"] = bool((a >> i) & 1)
                    vector[f"b{i}"] = bool((b >> i) & 1)
                out = network.evaluate_outputs(vector)
                got = sum((1 << k) for k, name in enumerate(outputs) if out[name])
                assert got == a * b, (a, b)


class TestOtherGenerators:
    def test_parity(self):
        network = g.parity_tree(5)
        rng = np.random.default_rng(1)
        for vector in random_vectors(list(network.inputs), 20, rng):
            expected = sum(vector.values()) % 2 == 1
            assert network.evaluate_outputs(vector)[network.outputs[0]] == expected

    def test_equality_comparator(self):
        network = g.equality_comparator(3)
        for a, b in itertools.product(range(8), repeat=2):
            vector = {}
            for i in range(3):
                vector[f"a{i}"] = bool((a >> i) & 1)
                vector[f"b{i}"] = bool((b >> i) & 1)
            out = network.evaluate_outputs(vector)
            assert out[network.outputs[0]] == (a == b)

    def test_magnitude_comparator(self):
        network = g.magnitude_comparator(3)
        for a, b in itertools.product(range(8), repeat=2):
            vector = {}
            for i in range(3):
                vector[f"a{i}"] = bool((a >> i) & 1)
                vector[f"b{i}"] = bool((b >> i) & 1)
            out = network.evaluate_outputs(vector)
            assert out[network.outputs[0]] == (a < b)

    def test_decoder_one_hot(self):
        network = g.decoder(3)
        for value in range(8):
            vector = {f"s{i}": bool((value >> i) & 1) for i in range(3)}
            vector["en"] = True
            out = network.evaluate_outputs(vector)
            assert sum(out.values()) == 1
            assert out[f"o{value}"]
            vector["en"] = False
            out = network.evaluate_outputs(vector)
            assert sum(out.values()) == 0

    def test_mux_selects(self):
        network = g.mux_tree(2)
        for sel in range(4):
            for data in range(16):
                vector = {f"d{i}": bool((data >> i) & 1) for i in range(4)}
                vector["s0"] = bool(sel & 1)
                vector["s1"] = bool(sel & 2)
                out = network.evaluate_outputs(vector)
                assert out[network.outputs[0]] == bool((data >> sel) & 1)

    def test_alu_functions(self):
        network = g.alu_slice(2)
        a, b = 0b10, 0b11
        vector = {"a0": False, "a1": True, "b0": True, "b1": True}
        expectations = {
            (False, False): a & b,
            (False, True): a | b,
            (True, False): a ^ b,
            (True, True): (a + b) & 0b11,
        }
        for (op1, op0), expected in expectations.items():
            vector["op0"], vector["op1"] = op0, op1
            out = network.evaluate_outputs(vector)
            got = (int(out["y1"]) << 1) | int(out["y0"])
            assert got == expected, (op1, op0)

    def test_majority(self):
        network = g.majority(5)
        rng = np.random.default_rng(2)
        for vector in random_vectors(list(network.inputs), 20, rng):
            expected = sum(vector.values()) >= 3
            assert network.evaluate_outputs(vector)["maj"] == expected

    def test_majority_validation(self):
        with pytest.raises(ValueError):
            g.majority(4)


class TestRandomLogic:
    def test_deterministic(self):
        n1 = g.random_logic(8, 15, seed=3)
        n2 = g.random_logic(8, 15, seed=3)
        rng = np.random.default_rng(0)
        for vector in random_vectors(list(n1.inputs), 10, rng):
            assert n1.evaluate_outputs(vector) == n2.evaluate_outputs(vector)

    def test_no_dangling_nodes(self):
        network = g.random_logic(10, 30, seed=9)
        read = set()
        for node in network.nodes:
            read.update(node.inputs)
        for node in network.nodes:
            assert node.name in read or node.name in network.outputs

    def test_outputs_not_constant_under_sampling(self):
        network = g.random_logic(8, 25, seed=13)
        rng = np.random.default_rng(1)
        seen = {o: set() for o in network.outputs}
        for vector in random_vectors(list(network.inputs), 64, rng):
            out = network.evaluate_outputs(vector)
            for o, v in out.items():
                seen[o].add(v)
        constant = [o for o, vals in seen.items() if len(vals) == 1]
        assert len(constant) <= len(network.outputs) // 4


class TestSuite:
    def test_full_suite_size_and_validity(self):
        cases = benchmark_suite("full")
        assert len(cases) == 30
        names = [c.name for c in cases]
        assert len(set(names)) == 30
        for case in cases:
            network = case.network()  # validates internally
            assert len(network.inputs) >= 1
            assert len(network.outputs) >= 1

    def test_quick_subset(self):
        quick = benchmark_suite("quick")
        assert 5 <= len(quick) <= 15
        full_names = {c.name for c in benchmark_suite("full")}
        assert all(c.name in full_names for c in quick)

    def test_get_case(self):
        assert get_case("c17").name == "c17"
        with pytest.raises(KeyError):
            get_case("nope")

    def test_unknown_subset(self):
        with pytest.raises(ValueError):
            benchmark_suite("gigantic")
