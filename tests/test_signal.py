"""Tests for the stochastic signal model and Markov waveform sampling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.signal import (
    SignalStats,
    markov_waveform,
    measure_waveform,
    merge_measurements,
)


class TestSignalStats:
    def test_valid(self):
        s = SignalStats(0.5, 1e6)
        assert s.probability == 0.5 and s.density == 1e6

    def test_probability_range(self):
        with pytest.raises(ValueError):
            SignalStats(1.5, 0.0)
        with pytest.raises(ValueError):
            SignalStats(-0.1, 0.0)

    def test_negative_density(self):
        with pytest.raises(ValueError):
            SignalStats(0.5, -1.0)

    def test_switching_at_rail_rejected(self):
        with pytest.raises(ValueError):
            SignalStats(0.0, 100.0)
        with pytest.raises(ValueError):
            SignalStats(1.0, 100.0)

    def test_constant(self):
        s = SignalStats.constant(True)
        assert s.probability == 1.0 and s.density == 0.0
        assert math.isinf(s.mean_high_dwell)

    def test_dwell_times(self):
        s = SignalStats(0.25, 2.0)
        # T_high + T_low = 2/D = 1; T_high = 2P/D = 0.25.
        assert s.mean_high_dwell == pytest.approx(0.25)
        assert s.mean_low_dwell == pytest.approx(0.75)

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.1, max_value=1e6),
    )
    def test_dwell_identity(self, p, d):
        s = SignalStats(p, d)
        assert s.mean_high_dwell + s.mean_low_dwell == pytest.approx(2.0 / d)
        total = s.mean_high_dwell + s.mean_low_dwell
        assert s.mean_high_dwell / total == pytest.approx(p)


class TestWaveform:
    def test_constant_signal(self):
        rng = np.random.default_rng(0)
        initial, times = markov_waveform(SignalStats.constant(True), 10.0, rng)
        assert initial == 1 and times == ()

    def test_transitions_sorted_within_duration(self):
        rng = np.random.default_rng(1)
        _, times = markov_waveform(SignalStats(0.5, 10.0), 50.0, rng)
        assert list(times) == sorted(times)
        assert all(0.0 < t < 50.0 for t in times)

    def test_bad_duration(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            markov_waveform(SignalStats(0.5, 1.0), 0.0, rng)

    @pytest.mark.parametrize("p,d", [(0.5, 10.0), (0.2, 4.0), (0.8, 25.0)])
    def test_statistics_converge(self, p, d):
        """Empirical (P, D) of a long sample path match the specification."""
        rng = np.random.default_rng(42)
        duration = 4000.0 / d  # ~4000 expected transitions
        waveform = markov_waveform(SignalStats(p, d), duration, rng)
        measured = measure_waveform(waveform, duration)
        assert measured.probability == pytest.approx(p, abs=0.05)
        assert measured.density == pytest.approx(d, rel=0.08)

    def test_measure_simple_waveform(self):
        # 0 for [0,1), 1 for [1,3), 0 for [3,4): P = 0.5, D = 2/4.
        measured = measure_waveform((0, (1.0, 3.0)), 4.0)
        assert measured.probability == pytest.approx(0.5)
        assert measured.density == pytest.approx(0.5)

    def test_measure_constant(self):
        measured = measure_waveform((1, ()), 5.0)
        assert measured.probability == 1.0 and measured.density == 0.0


class TestMerge:
    def test_merge(self):
        merged = merge_measurements([SignalStats(0.4, 2.0), SignalStats(0.6, 4.0)])
        assert merged.probability == pytest.approx(0.5)
        assert merged.density == pytest.approx(3.0)

    def test_merge_empty(self):
        with pytest.raises(ValueError):
            merge_measurements([])
