"""Tests for the delta-driven ECO search engine (`repro.incremental.search`)."""

import json
import zlib

import pytest

from repro.bench.runner import dumps_artifact, strip_timing
from repro.bench.suite import get_case
from repro.circuit.netlist import SetConfig, SetTemplate
from repro.core.optimizer import circuit_power, optimize_circuit
from repro.incremental import (
    Objective,
    StatsCache,
    enumerate_moves,
    make_objective,
    search_circuit,
)
from repro.incremental.backends import SampledBackend
from repro.incremental.eco import resolve_edit
from repro.incremental.search import swap_groups
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import propagate_stats
from repro.synth.mapper import map_circuit


@pytest.fixture(scope="module")
def adder():
    # search_circuit never mutates its input circuit, so the mapped
    # master is shared module-wide; tests that edit in place (via a
    # live cache) copy it themselves.
    circuit = map_circuit(get_case("rca4").network())
    stats = ScenarioA(seed=3).input_stats(circuit.inputs)
    return circuit, stats


def canonical(result):
    """The byte-stable form of a search artifact (timing stripped)."""
    return dumps_artifact(strip_timing(result.to_artifact()))


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------
class TestObjective:
    def test_named_objectives(self):
        assert make_objective("power") == Objective("power", 1.0, 0.0)
        assert make_objective("delay") == Objective("delay", 0.0, 1.0)
        weighted = make_objective("power-delay")
        assert weighted.power_weight == weighted.delay_weight == 0.5
        custom = make_objective("power-delay", delay_weight=0.25)
        assert custom.power_weight == 0.75 and custom.delay_weight == 0.25

    def test_baseline_scores_to_weight_sum(self):
        objective = make_objective("power-delay", delay_weight=0.3)
        assert objective.score(2.0, 5.0, 2.0, 5.0) == pytest.approx(1.0)
        assert make_objective("power").score(3.0, 99.0, 3.0, 1.0) == 1.0

    def test_needs_delay(self):
        assert not make_objective("power").needs_delay
        assert make_objective("delay").needs_delay
        assert make_objective("power-delay").needs_delay

    def test_instance_passthrough(self):
        objective = Objective("custom", 2.0, 1.0)
        assert make_objective(objective) is objective
        with pytest.raises(TypeError):
            make_objective(objective, delay_weight=0.5)

    def test_rejections(self):
        with pytest.raises(ValueError):
            make_objective("area")
        with pytest.raises(ValueError):
            make_objective("power", delay_weight=0.5)
        with pytest.raises(ValueError):
            make_objective("power-delay", delay_weight=1.5)
        with pytest.raises(ValueError):
            Objective("bad", 0.0, 0.0)
        with pytest.raises(ValueError):
            Objective("bad", -1.0, 1.0)


# ----------------------------------------------------------------------
# Move enumeration
# ----------------------------------------------------------------------
class TestMoves:
    def test_reorder_moves_exclude_current(self, adder):
        circuit, _ = adder
        gate = next(g for g in circuit.gates
                    if g.template.num_configurations() > 1)
        moves = enumerate_moves(circuit, gate.name)
        assert len(moves) == gate.template.num_configurations() - 1
        current = gate.effective_config().key()
        assert all(m.kind == "reorder" for m in moves)
        assert all(m.edit.config.key() != current for m in moves)

    def test_moves_follow_the_current_configuration(self, adder):
        circuit, _ = adder
        work = circuit.copy()
        gate = next(g for g in work.gates
                    if g.template.num_configurations() > 1)
        work.set_config(gate.name, gate.template.configurations()[-1])
        keys = {m.edit.config.key() for m in enumerate_moves(work, gate.name)}
        assert gate.template.default_config().key() in keys
        assert gate.effective_config().key() not in keys

    def test_retemplate_moves_are_opt_in_and_same_pins(self, adder):
        circuit, _ = adder
        groups = swap_groups(circuit)
        gate = next(g for g in circuit.gates if g.template.pins in groups)
        plain = enumerate_moves(circuit, gate.name)
        assert all(m.kind == "reorder" for m in plain)
        moves = enumerate_moves(circuit, gate.name, retemplate=True)
        swaps = [m for m in moves if m.kind == "retemplate"]
        assert swaps
        for move in swaps:
            assert circuit.library[move.edit.template].pins == gate.template.pins
            assert move.edit.template != gate.template.name
        # reorder candidates come first so batched trials stay legal
        kinds = [m.kind for m in moves]
        assert kinds == sorted(kinds, key=("reorder", "retemplate").index)

    def test_script_entry_roundtrips_through_eco_vocabulary(self, adder):
        circuit, _ = adder
        groups = swap_groups(circuit)
        gate = next(g for g in circuit.gates
                    if g.template.num_configurations() > 1
                    and g.template.pins in groups)
        for move in enumerate_moves(circuit, gate.name, retemplate=True):
            assert resolve_edit(circuit, move.script_entry(circuit)) == move.edit


# ----------------------------------------------------------------------
# Greedy descent
# ----------------------------------------------------------------------
class TestGreedy:
    def test_every_accepted_move_improves_power(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats)
        assert result.accepted
        assert all(move.delta_power < 0.0 for move in result.accepted)
        powers = [result.power_before] + [m.power_after for m in result.accepted]
        assert powers == sorted(powers, reverse=True)
        assert result.power_after == result.accepted[-1].power_after

    def test_input_circuit_untouched(self, adder):
        circuit, stats = adder
        before = [(g.name, g.template.name, g.effective_config().key())
                  for g in circuit.gates]
        search_circuit(circuit, stats)
        after = [(g.name, g.template.name, g.effective_config().key())
                 for g in circuit.gates]
        assert before == after

    def test_fixed_point_is_stable(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats)
        again = search_circuit(result.circuit, stats)
        assert again.accepted == []
        assert again.power_after == result.power_after

    def test_deterministic_artifact(self, adder):
        circuit, stats = adder
        one = search_circuit(circuit, stats)
        two = search_circuit(circuit, stats)
        assert canonical(one) == canonical(two)

    def test_matches_cone_aware_multipass_power(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats)
        multi = optimize_circuit(circuit, stats, passes=8)
        assert result.power_after == pytest.approx(multi.power_after, rel=1e-12)

    def test_net_stats_match_from_scratch(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats)
        assert result.net_stats == propagate_stats(result.circuit, stats, "local")

    def test_eco_script_replays_to_the_same_power(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats)
        replay = circuit.copy()
        for entry in result.eco_script():
            replay.apply_edit(resolve_edit(replay, entry))
        assert circuit_power(replay, stats).total == pytest.approx(
            result.power_after, rel=1e-12
        )

    def test_move_budget(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats, max_moves=2)
        assert len(result.accepted) == 2
        assert result.budget_exhausted

    def test_trial_budget(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats, max_trials=10)
        assert result.trials <= 10 + max(
            g.template.num_configurations() - 1 for g in circuit.gates
        )
        assert result.budget_exhausted

    def test_round_budget(self, adder):
        circuit, stats = adder
        capped = search_circuit(circuit, stats, max_rounds=1)
        full = search_circuit(circuit, stats)
        assert capped.rounds == 1
        assert full.rounds > 1
        assert capped.power_after >= full.power_after

    def test_retemplate_search_improves_on_reorder_only(self, adder):
        # With function-changing swaps allowed the reachable optimum can
        # only widen; the searched netlist must stay consistent with a
        # from-scratch re-analysis even then.
        circuit, stats = adder
        plain = search_circuit(circuit, stats)
        swapped = search_circuit(circuit, stats, retemplate=True)
        assert swapped.power_after <= plain.power_after * (1.0 + 1e-9)
        assert swapped.net_stats == propagate_stats(
            swapped.circuit, stats, "local"
        )

    def test_delay_objective_never_runs_uphill_in_delay(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats, objective="delay")
        assert all(move.delta_delay < 0.0 for move in result.accepted)
        assert result.delay_after <= result.delay_before


# ----------------------------------------------------------------------
# Simulated annealing
# ----------------------------------------------------------------------
class TestAnneal:
    def run(self, circuit, stats, seed, **kwargs):
        kwargs.setdefault("anneal_trials", 150)
        return search_circuit(circuit, stats, strategy="anneal", seed=seed,
                              **kwargs)

    def test_same_seed_is_byte_identical(self, adder):
        circuit, stats = adder
        one = self.run(circuit, stats, seed=11)
        two = self.run(circuit, stats, seed=11)
        assert canonical(one) == canonical(two)

    def test_seed_changes_the_trace(self, adder):
        # Locks the seed plumbing: if the substream scheme ever ignored
        # the seed, these traces would collapse to one trajectory.
        circuit, stats = adder
        one = self.run(circuit, stats, seed=11)
        two = self.run(circuit, stats, seed=12)
        assert [m.entry for m in one.accepted] != [m.entry for m in two.accepted]

    def test_golden_accepted_move_trace(self, adder):
        # Golden lock on the full accepted-move trace (gate, edit and
        # acceptance order) for a fixed seed; the CRC pin means any
        # change to the RNG substream scheme, the enumeration order or
        # the acceptance rule shows up as a failure here, not as silent
        # artifact drift.  Regenerate with this file's __main__ helper.
        circuit, stats = adder
        result = self.run(circuit, stats, seed=0)
        trace = json.dumps([m.entry for m in result.accepted], sort_keys=True)
        assert result.accepted, "seed 0 must accept at least one move"
        assert zlib.crc32(trace.encode("utf-8")) == GOLDEN_TRACE_CRC

    def test_temperatures_cool_monotonically(self, adder):
        circuit, stats = adder
        result = self.run(circuit, stats, seed=11)
        temps = [m.temperature for m in result.accepted]
        assert temps == sorted(temps, reverse=True)
        assert all(t > 0.0 for t in temps)

    def test_polish_reaches_the_greedy_fixed_point(self, adder):
        circuit, stats = adder
        greedy = search_circuit(circuit, stats)
        polished = self.run(circuit, stats, seed=11, polish=True)
        assert polished.power_after <= greedy.power_after * (1.0 + 1e-9)

    def test_uphill_moves_need_positive_temperature(self, adder):
        circuit, stats = adder
        result = self.run(circuit, stats, seed=11, initial_temp=0.05,
                          cooling=0.99)
        uphill = [m for m in result.accepted if m.delta_power > 0.0]
        assert all(m.temperature > 0.0 for m in uphill)


#: CRC-32 of the canonical JSON accepted-move trace of
#: ``anneal(rca4, ScenarioA(seed=3) stats, seed=0, anneal_trials=150)``.
GOLDEN_TRACE_CRC = 658387588


# ----------------------------------------------------------------------
# Argument validation and live-cache mode
# ----------------------------------------------------------------------
class TestSearchArguments:
    def test_unknown_strategy_and_objective(self, adder):
        circuit, stats = adder
        with pytest.raises(ValueError):
            search_circuit(circuit, stats, strategy="tabu")
        with pytest.raises(ValueError):
            search_circuit(circuit, stats, objective="area")

    def test_circuit_and_cache_are_exclusive(self, adder):
        circuit, stats = adder
        with pytest.raises(TypeError):
            search_circuit()
        with StatsCache(circuit.copy(), stats) as cache:
            with pytest.raises(TypeError):
                search_circuit(circuit, stats, cache=cache)
            with pytest.raises(TypeError):
                search_circuit(cache=cache, backend="sampled")
            with pytest.raises(TypeError):
                search_circuit(cache=cache, po_load=5.0e-14)

    def test_live_cache_searches_in_place(self, adder):
        circuit, stats = adder
        work = circuit.copy()
        with StatsCache(work, stats) as cache:
            result = search_circuit(cache=cache, max_moves=3)
            assert result.circuit is work
            # the cache stays open and consistent for the caller
            assert cache.stats() == propagate_stats(work, stats, "local")
            assert [g.effective_config().key() for g in work.gates] != [
                g.effective_config().key() for g in circuit.gates
            ]


# ----------------------------------------------------------------------
# Sampled backend
# ----------------------------------------------------------------------
class TestSampledSearch:
    LANES, STEPS, SEED = 64, 12, 5

    def test_search_leaves_stats_bitidentical_to_resample(self, adder):
        circuit, stats = adder
        dwells = [
            d for s in stats.values()
            for d in (s.mean_high_dwell, s.mean_low_dwell)
        ]
        dt = 0.2 * min(dwells)
        result = search_circuit(circuit, stats, backend="sampled",
                                lanes=self.LANES, steps=self.STEPS, dt=dt,
                                seed=self.SEED, max_moves=6)
        fresh = SampledBackend(lanes=self.LANES, steps=self.STEPS, dt=dt,
                               seed=self.SEED).full(result.circuit, stats)
        assert result.net_stats == fresh
        rean = circuit_power(result.circuit, stats, net_stats=fresh)
        assert result.power_after == pytest.approx(rean.total, rel=1e-12)


if __name__ == "__main__":  # pragma: no cover - golden regeneration helper
    circuit = map_circuit(get_case("rca4").network())
    stats = ScenarioA(seed=3).input_stats(circuit.inputs)
    result = search_circuit(circuit, stats, strategy="anneal", seed=0,
                            anneal_trials=150)
    trace = json.dumps([m.entry for m in result.accepted], sort_keys=True)
    print("GOLDEN_TRACE_CRC =", zlib.crc32(trace.encode("utf-8")))
