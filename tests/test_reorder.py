"""Tests for configuration enumeration and the Figure 4 pivot search."""

import pytest

from repro.core.power_model import GatePowerModel
from repro.core.reorder import (
    enumerate_configurations,
    evaluate_configurations,
    find_best_configuration,
    find_worst_configuration,
    pivot_search,
)
from repro.gates.capacitance import TechParams
from repro.gates.library import default_library
from repro.stochastic.signal import SignalStats

LIB = default_library()
MODEL = GatePowerModel(TechParams())


class TestPivotSearch:
    @pytest.mark.parametrize("name", list(LIB.names))
    def test_pivot_search_equals_brute_force(self, name):
        """Figure 4 generates exactly the brute-force configuration set."""
        template = LIB[name]
        brute = {c.key() for c in enumerate_configurations(template)}
        pivot = {c.key() for c in pivot_search(template)}
        assert pivot == brute

    def test_figure5_execution_four_reorderings(self):
        """The paper's Figure 5: the oai21-style gate yields 4 reorderings."""
        configs = pivot_search(LIB["oai21"])
        assert len(configs) == 4
        assert configs[0].key() == LIB["oai21"].default_config().key()

    def test_inverter_single_configuration(self):
        assert len(pivot_search(LIB["inv"])) == 1

    def test_discovery_order_deterministic(self):
        a = [c.key() for c in pivot_search(LIB["aoi221"])]
        b = [c.key() for c in pivot_search(LIB["aoi221"])]
        assert a == b

    def test_max_configs_limits_search(self):
        configs = pivot_search(LIB["aoi222"], max_configs=5)
        assert len(configs) <= 6  # may overshoot by the final expansion level


class TestEvaluation:
    def _stats(self, template, densities=None):
        pins = template.pins
        if densities is None:
            densities = [1e4 * (j + 1) for j in range(len(pins))]
        return {p: SignalStats(0.5, d) for p, d in zip(pins, densities)}

    def test_evaluations_cover_all_configs(self):
        template = LIB["oai21"]
        evaluations = evaluate_configurations(template, self._stats(template), MODEL)
        assert len(evaluations) == template.num_configurations()
        assert all(e.power > 0 for e in evaluations)

    def test_best_not_above_worst(self):
        for name in ("nand3", "oai21", "aoi22", "aoi221"):
            template = LIB[name]
            stats = self._stats(template)
            best = find_best_configuration(template, stats, MODEL)
            worst = find_worst_configuration(template, stats, MODEL)
            assert best.power <= worst.power

    def test_symmetric_stats_make_ties(self):
        """Identical input stats: every nand3 ordering has the same power."""
        template = LIB["nand3"]
        stats = {p: SignalStats(0.5, 1e5) for p in template.pins}
        evaluations = evaluate_configurations(template, stats, MODEL)
        powers = {round(e.power, 25) for e in evaluations}
        assert len(powers) == 1

    def test_asymmetric_stats_break_ties(self):
        template = LIB["nand3"]
        stats = {
            "a": SignalStats(0.5, 1e4),
            "b": SignalStats(0.5, 1e5),
            "c": SignalStats(0.5, 1e6),
        }
        evaluations = evaluate_configurations(template, stats, MODEL)
        powers = {round(e.power, 25) for e in evaluations}
        assert len(powers) > 1

    def test_best_flips_with_activity_profile(self):
        """The Table 1 motivation: the optimum depends on the densities."""
        template = LIB["oai21"]
        case1 = {
            "a": SignalStats(0.5, 1e4),
            "b": SignalStats(0.5, 1e5),
            "c": SignalStats(0.5, 1e6),
        }
        case2 = {
            "a": SignalStats(0.5, 1e6),
            "b": SignalStats(0.5, 1e5),
            "c": SignalStats(0.5, 1e4),
        }
        best1 = find_best_configuration(template, case1, MODEL, output_load=10e-15)
        best2 = find_best_configuration(template, case2, MODEL, output_load=10e-15)
        assert best1.config.key() != best2.config.key()

    def test_inverter_no_choice(self):
        template = LIB["inv"]
        stats = {"a": SignalStats(0.5, 1e5)}
        best = find_best_configuration(template, stats, MODEL)
        worst = find_worst_configuration(template, stats, MODEL)
        assert best.power == pytest.approx(worst.power)
