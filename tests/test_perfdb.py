"""The perf-regression harness (:mod:`repro.obs.perfdb`) and its CLI.

Headline-metric extraction from both artifact shapes, the append-only
baseline store with latest-entry-wins folding, direction-aware
regression judgement, deterministic rendering, and the ``repro bench
baseline`` / ``repro bench check`` front ends (check must exit nonzero
on an injected regression and zero on an unchanged run).
"""

import io
import json
import os

import pytest

from repro.cli import main
from repro.obs import perfdb


def _bench_artifact(speedup=6.0, serial_s=1.2, overhead=0.004):
    return {
        "schema": 1,
        "bench": {"name": "parallel_search"},
        "meta": {"python": "3.11", "hostname": "box"},
        "results": [
            {"mode": "portfolio-anneal", "speedup": speedup,
             "serial_s": serial_s, "parallel_s": serial_s / speedup,
             "restarts": 4},
            {"mode": "overhead", "overhead_fraction": overhead},
        ],
    }


def _suite_artifact(case_s=0.5, total_s=2.0):
    return {
        "schema": 1,
        "suite": {"subset": "quick", "cases": ["c17"],
                  "scenarios": ["A"], "seed": 0},
        "jobs": 1,
        "elapsed_s": total_s,
        "meta": {"python": "3.11"},
        "results": [
            {"circuit": "c17", "scenario": "A", "gates": 6,
             "model_reduction": 0.1, "elapsed_s": case_s},
        ],
    }


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestHeadlineMetrics:
    def test_bench_artifact_fields_and_directions(self):
        metrics = perfdb.headline_metrics(_bench_artifact())
        by_name = {m.name: m for m in metrics.values()}
        speedup = by_name["parallel_search/portfolio-anneal/speedup"]
        assert speedup.value == 6.0
        assert speedup.direction == "higher" and speedup.kind == "ratio"
        serial = by_name["parallel_search/portfolio-anneal/serial_s"]
        assert serial.direction == "lower" and serial.kind == "wall"
        overhead = by_name["parallel_search/overhead/overhead_fraction"]
        assert overhead.direction == "lower" and overhead.kind == "ratio"
        # plain counts (restarts) never become metrics
        assert not any(name.endswith("/restarts") for name in by_name)

    def test_suite_artifact_rows_and_total(self):
        metrics = perfdb.headline_metrics(_suite_artifact())
        assert set(metrics) == {
            "suite-quick/c17:A/elapsed_s",
            "suite-quick/total/elapsed_s",
        }
        assert all(m.direction == "lower" and m.kind == "wall"
                   for m in metrics.values())

    def test_unrecognized_artifact_raises(self):
        with pytest.raises(ValueError):
            perfdb.headline_metrics({"schema": 1, "results": []})


class TestBaselineStore:
    def test_append_load_and_fold(self, tmp_path):
        path = str(tmp_path / "BASE.json")
        entry = perfdb.append_artifact(path, _bench_artifact(speedup=5.0),
                                       label="first")
        assert entry["label"] == "first"
        assert entry["meta"]["hostname"] == "box"
        perfdb.append_artifact(path, _bench_artifact(speedup=7.0))
        store = perfdb.load_baseline(path)
        assert len(store["entries"]) == 2
        folded = perfdb.baseline_metrics(store)
        # latest entry wins
        assert folded["parallel_search/portfolio-anneal/speedup"].value == 7.0
        assert folded["parallel_search/portfolio-anneal/speedup"].direction \
            == "higher"

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ValueError):
            perfdb.load_baseline(str(path))


class TestCheck:
    def _metrics(self, artifact):
        return perfdb.headline_metrics(artifact)

    def test_unchanged_run_passes(self):
        base = self._metrics(_bench_artifact())
        result = perfdb.check_metrics(self._metrics(_bench_artifact()), base)
        assert result.regressions == []
        assert all(row.status == "ok" for row in result.rows)

    def test_slowed_wall_time_and_lost_speedup_regress(self):
        base = self._metrics(_bench_artifact(speedup=6.0, serial_s=1.0))
        cur = self._metrics(_bench_artifact(speedup=2.0, serial_s=3.0))
        result = perfdb.check_metrics(cur, base)
        failing = {row.name for row in result.regressions}
        assert "parallel_search/portfolio-anneal/speedup" in failing
        assert "parallel_search/portfolio-anneal/serial_s" in failing

    def test_direction_matters(self):
        # A *faster* run never regresses, however large the change.
        base = self._metrics(_bench_artifact(speedup=2.0, serial_s=9.0))
        cur = self._metrics(_bench_artifact(speedup=20.0, serial_s=0.1))
        assert perfdb.check_metrics(cur, base).regressions == []

    def test_tolerance_override(self):
        base = self._metrics(_bench_artifact(speedup=10.0))
        cur = self._metrics(_bench_artifact(speedup=8.9))  # -11%
        assert perfdb.check_metrics(cur, base).regressions == []
        tight = perfdb.check_metrics(cur, base, tolerance=0.05)
        assert any(row.name.endswith("/speedup")
                   for row in tight.regressions)

    def test_new_and_absent_are_not_violations(self):
        base = self._metrics(_bench_artifact())
        cur = self._metrics(_suite_artifact())
        result = perfdb.check_metrics(cur, base)
        statuses = {row.status for row in result.rows}
        assert statuses == {"new", "absent"}
        assert result.regressions == []

    def test_render_is_deterministic(self):
        base = self._metrics(_bench_artifact(speedup=6.0))
        cur = self._metrics(_bench_artifact(speedup=1.0))
        result = perfdb.check_metrics(cur, base)
        one = perfdb.render_check(result)
        two = perfdb.render_check(result)
        assert one == two
        assert "REGRESSED" in one and "bench check" in one


class TestCLI:
    def _write(self, path, artifact):
        path.write_text(json.dumps(artifact))
        return str(path)

    def test_baseline_then_check_roundtrip(self, tmp_path):
        art = self._write(tmp_path / "bench.json", _bench_artifact())
        base = str(tmp_path / "BASE.json")
        code, text = run_cli("bench", "baseline", art, "--baseline", base,
                             "--label", "seed")
        assert code == 0 and "recorded" in text

        code, text = run_cli("bench", "check", art, "--baseline", base)
        assert code == 0
        assert "0 regressed" in text

        slowed = self._write(tmp_path / "slow.json",
                             _bench_artifact(speedup=1.5, serial_s=4.0))
        code, text = run_cli("bench", "check", slowed, "--baseline", base)
        assert code == 1
        assert "REGRESSED" in text

    def test_check_missing_baseline_fails_cleanly(self, tmp_path):
        art = self._write(tmp_path / "bench.json", _bench_artifact())
        with pytest.raises(SystemExit):
            run_cli("bench", "check", art,
                    "--baseline", str(tmp_path / "nope.json"))

    def test_plain_bench_parser_still_works(self):
        # The nested subcommands must not break flag-only `repro bench`.
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--subset", "quick",
                                          "--jobs", "2"])
        assert args.command == "bench"
        assert args.bench_command is None
        assert args.jobs == 2

    def test_repo_baseline_is_loadable(self):
        # The committed baseline must stay parseable and non-empty.
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "BASELINE.json")
        store = perfdb.load_baseline(path)
        assert perfdb.baseline_metrics(store)
